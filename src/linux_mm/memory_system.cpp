#include "linux_mm/memory_system.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"

namespace hpmmap::mm {

MemorySystem::MemorySystem(hw::PhysicalMemory& phys, hw::BandwidthModel& bw, Rng rng,
                           const CostModel& costs)
    : phys_(phys), bw_(bw), rng_(rng), costs_(costs) {
  rebuild_zones();
}

void MemorySystem::rebuild_zones() {
  zones_.clear();
  for (const hw::Zone& z : phys_.zones()) {
    // Offlining drains sections from the top of the zone, so the online
    // portion is the contiguous prefix.
    const Range online{z.range.begin, z.range.begin + z.online_bytes};
    HPMMAP_ASSERT(!online.empty(), "zone fully offlined; Linux needs some memory per zone");
    zones_.emplace_back(online, z.online_bytes);
    zones_.back().cache.set_free_floor(static_cast<std::uint64_t>(
        costs_.watermark_low * static_cast<double>(z.online_bytes)));
  }
}

BuddyAllocator& MemorySystem::buddy(ZoneId zone) {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  return zones_[zone].buddy;
}

const BuddyAllocator& MemorySystem::buddy(ZoneId zone) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  return zones_[zone].buddy;
}

PageCache& MemorySystem::cache(ZoneId zone) {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  return zones_[zone].cache;
}

std::uint64_t MemorySystem::free_bytes(ZoneId zone) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  return zones_[zone].buddy.free_bytes();
}

bool MemorySystem::below_low_watermark(ZoneId zone) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  const auto& z = zones_[zone];
  return static_cast<double>(z.buddy.free_bytes()) <
         costs_.watermark_low * static_cast<double>(z.online_bytes);
}

bool MemorySystem::below_min_watermark(ZoneId zone) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  const auto& z = zones_[zone];
  return static_cast<double>(z.buddy.free_bytes()) <
         costs_.watermark_min * static_cast<double>(z.online_bytes);
}

ZoneId MemorySystem::fallback_zone(ZoneId preferred) const {
  ZoneId best = preferred;
  std::uint64_t best_free = 0;
  for (ZoneId z = 0; z < zones_.size(); ++z) {
    const std::uint64_t f = zones_[z].buddy.free_bytes();
    if (f > best_free) {
      best_free = f;
      best = z;
    }
  }
  return best;
}

bool MemorySystem::window_movable(const ZoneState& z, Range window) const {
  Addr pos = window.begin;
  while (pos < window.end) {
    if (auto free_blk = z.buddy.free_block_containing(pos); free_blk.has_value()) {
      pos = free_blk->first + BuddyAllocator::order_bytes(free_blk->second);
      continue;
    }
    if (auto cache_blk = z.cache.block_containing(pos); cache_blk.has_value()) {
      pos = cache_blk->first + BuddyAllocator::order_bytes(cache_blk->second);
      continue;
    }
    return false; // unmovable (anonymous/app/kernel) frame in the window
  }
  return true;
}

std::optional<Addr> MemorySystem::run_compaction(ZoneState& z, AllocOutcome& outcome) {
  outcome.entered_compaction = true;
  if (z.compact_defer > 0) {
    // defer_compaction(): a recent attempt failed; fail fast for a while
    // instead of rescanning a zone that has not changed.
    --z.compact_defer;
    outcome.compaction_deferred = true;
    return std::nullopt;
  }
  if (z.buddy.free_bytes() < 2 * kLargePageSize) {
    z.compact_defer = 16;
    return std::nullopt; // no migration headroom
  }
  const Range zr = z.buddy.range();
  const std::uint64_t window_count = zr.size() / kLargePageSize;
  constexpr std::uint64_t kScanBudget = 256; // windows per attempt, like the kernel's quota

  for (std::uint64_t scanned = 0; scanned < std::min(window_count, kScanBudget); ++scanned) {
    ++outcome.compaction_windows_scanned;
    if (z.compact_cursor + kLargePageSize > zr.end) {
      z.compact_cursor = zr.begin;
    }
    const Range window{z.compact_cursor, z.compact_cursor + kLargePageSize};
    z.compact_cursor += kLargePageSize;
    if (!window_movable(z, window)) {
      continue;
    }
    // Claim the free holes in the window first so migration targets are
    // found elsewhere, then migrate the cache blocks out one by one.
    struct Taken {
      Addr addr;
      unsigned order;
    };
    std::vector<Taken> holes;
    Addr pos = window.begin;
    while (pos < window.end) {
      if (auto free_blk = z.buddy.free_block_containing(pos); free_blk.has_value()) {
        const bool took = z.buddy.take_free_block(free_blk->first, free_blk->second);
        HPMMAP_ASSERT(took, "free_block_containing said this block was free");
        holes.push_back(Taken{free_blk->first, free_blk->second});
        pos = free_blk->first + BuddyAllocator::order_bytes(free_blk->second);
      } else {
        const auto cache_blk = z.cache.block_containing(pos);
        HPMMAP_ASSERT(cache_blk.has_value(), "window_movable guaranteed free-or-cache");
        const auto replacement = z.buddy.alloc(cache_blk->second);
        if (!replacement.has_value()) {
          // Out of migration targets: roll back the holes and give up.
          for (const Taken& h : holes) {
            z.buddy.free(h.addr, h.order);
          }
          z.compact_defer = 64;
          return std::nullopt;
        }
        z.cache.relocate(cache_blk->first, replacement->addr);
        outcome.compaction_migrated_bytes += BuddyAllocator::order_bytes(cache_blk->second);
        // The vacated frames become part of the window we now own.
        pos = cache_blk->first + BuddyAllocator::order_bytes(cache_blk->second);
      }
    }
    // The whole window is now allocated to us and physically contiguous.
    z.compact_defer = 0;
    return window.begin;
  }
  z.compact_defer = 64;
  return std::nullopt;
}

AllocOutcome MemorySystem::alloc_pages(ZoneId zone, unsigned order, bool allow_reclaim) {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  HPMMAP_ASSERT(order <= kLinuxMaxOrder, "order above Linux MAX_ORDER");
  ZoneState& z = zones_[zone];
  AllocOutcome outcome;
  // Injected buddy failure: the fast path refuses this call, forcing the
  // slow path (or, for opportunistic callers, an outright miss the
  // caller must absorb — THP falls back to 4K, faults retry).
  bool buddy_fail = verify::injector().should_fail(verify::InjectPoint::kBuddyAlloc);

  const auto try_fast = [&]() -> bool {
    // Respect the min watermark: the last reserve is for the reclaim
    // path itself (unless there is no cache left to reclaim anyway).
    if (below_min_watermark(zone) && z.cache.cached_bytes() > 0) {
      return false;
    }
    auto alloc = z.buddy.alloc(order);
    if (!alloc.has_value()) {
      return false;
    }
    outcome.addr = alloc->addr;
    outcome.ok = true;
    outcome.split_steps = alloc->split_steps;
    return true;
  };

  if (!buddy_fail && !below_low_watermark(zone) && try_fast()) {
    return outcome;
  }

  if (!allow_reclaim) {
    // Opportunistic path: take it only if no slow-path work is needed.
    if (!buddy_fail && !below_low_watermark(zone) && try_fast()) {
      return outcome;
    }
    return outcome;
  }

  // Slow path: direct reclaim toward the high watermark (2x low), then
  // compaction for order-9+, then retry.
  for (int attempt = 0; attempt < 3 && !outcome.ok; ++attempt) {
    if (buddy_fail || below_low_watermark(zone) || !z.buddy.can_alloc(order)) {
      buddy_fail = false; // the injected miss forces one reclaim pass, no more
      outcome.entered_reclaim = true;
      const auto target = static_cast<std::uint64_t>(
          2.0 * costs_.watermark_low * static_cast<double>(z.online_bytes));
      const std::uint64_t have = z.buddy.free_bytes();
      if (have < target) {
        if (verify::injector().should_fail(verify::InjectPoint::kDirectReclaim)) {
          // Injected: the LRU scan finds nothing evictable; the retry
          // loop continues to compaction / smaller-order fallback.
        } else {
          const PageCache::ShrinkResult shrink = z.cache.shrink(target - have);
          outcome.reclaim_clean_blocks += shrink.clean_blocks;
          outcome.reclaim_writeback_blocks += shrink.writeback_blocks;
          if (trace::on(trace::Category::kBuddy)) {
            trace::instant(trace::Category::kBuddy, "mm.direct_reclaim", 0, -1,
                           {trace::Arg::u64("zone", zone),
                            trace::Arg::u64("clean", shrink.clean_blocks),
                            trace::Arg::u64("writeback", shrink.writeback_blocks),
                            trace::Arg::u64("free_bytes", have)});
            ++trace::metrics().counter("mm.direct_reclaim");
          }
        }
      }
    }
    if (try_fast()) {
      return outcome;
    }
    if (order >= kLargePageOrder) {
      const std::uint64_t scanned_before = outcome.compaction_windows_scanned;
      if (auto window = run_compaction(z, outcome); window.has_value()) {
        if (trace::on(trace::Category::kBuddy)) {
          trace::instant(trace::Category::kBuddy, "mm.compaction", 0, -1,
                         {trace::Arg::u64("zone", zone),
                          trace::Arg::u64("windows",
                                          outcome.compaction_windows_scanned - scanned_before),
                          trace::Arg::u64("migrated_bytes", outcome.compaction_migrated_bytes),
                          trace::Arg::u64("ok", 1)});
          ++trace::metrics().counter("mm.compaction");
        }
        outcome.addr = *window;
        outcome.ok = true;
        return outcome;
      }
      break; // compaction failed: caller falls back to a smaller order
    }
    if (z.cache.cached_bytes() == 0) {
      break; // nothing left to reclaim
    }
  }
  return outcome;
}

unsigned MemorySystem::free_pages(ZoneId zone, Addr addr, unsigned order) {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  return zones_[zone].buddy.free(addr, order);
}

Cycles MemorySystem::alloc_cycles(const AllocOutcome& outcome, ZoneId zone) {
  Cycles c = costs_.buddy_base + outcome.split_steps * costs_.buddy_split_step;
  if (outcome.entered_reclaim) {
    const std::uint64_t batches =
        (outcome.reclaim_clean_blocks + outcome.reclaim_writeback_blocks + 31) / 32;
    c += std::max<std::uint64_t>(batches, 1) * costs_.reclaim_batch_base;
    if (outcome.reclaim_writeback_blocks > 0) {
      // Writeback congestion: heavy-tailed stall (the 16M-cycle stdev in
      // Figure 3's loaded small faults comes from here).
      const double stall = rng_.pareto(static_cast<double>(costs_.reclaim_writeback),
                                       costs_.reclaim_writeback_tail_alpha);
      c += static_cast<Cycles>(stall);
    }
  }
  if (outcome.entered_compaction) {
    // A deferred attempt is just a counter check; a real attempt scans
    // and migrates.
    c += outcome.compaction_deferred ? 400 : costs_.compact_attempt;
    c += zero_cost(zone, outcome.compaction_migrated_bytes, costs_.copy_bytes_per_cycle);
  }
  // Contended channels slow the scanning parts of reclaim as well.
  const double factor = bw_.contention_factor(zone);
  return static_cast<Cycles>(static_cast<double>(c) * factor);
}

Cycles MemorySystem::zero_cost(ZoneId zone, std::uint64_t size, double rate_bytes_per_cycle) {
  const double rate = bw_.effective_rate(zone, rate_bytes_per_cycle);
  return stream_cycles(size, rate);
}

std::uint64_t MemorySystem::kswapd_balance(ZoneId zone) {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  ZoneState& z = zones_[zone];
  if (!below_low_watermark(zone)) {
    return 0;
  }
  const auto target = static_cast<std::uint64_t>(
      2.0 * costs_.watermark_low * static_cast<double>(z.online_bytes));
  const std::uint64_t have = z.buddy.free_bytes();
  if (have >= target) {
    return 0;
  }
  const std::uint64_t freed = z.cache.shrink(target - have).bytes_freed;
  if (freed > 0 && trace::on(trace::Category::kBuddy)) {
    trace::instant(trace::Category::kBuddy, "mm.kswapd", 0, -1,
                   {trace::Arg::u64("zone", zone), trace::Arg::u64("bytes_freed", freed)});
    ++trace::metrics().counter("mm.kswapd_wakeups");
  }
  return freed;
}

} // namespace hpmmap::mm
