// The Linux-side physical memory system: per-zone buddy allocators and
// page caches, plus the allocation slow path (watermarks, direct
// reclaim, compaction) every consumer goes through.
//
// alloc_pages() is the chokepoint that produces the paper's load
// sensitivity: on an idle machine it is a freelist pop; under a
// kernel-build workload the zone sits at its watermark, so the same call
// runs direct reclaim (LRU scan, occasionally a writeback stall with a
// Pareto tail) and, for order-9 requests, memory compaction.
//
// Compaction is implemented honestly: it scans 2M-aligned windows for
// one whose frames are all either free or movable (page-cache-owned),
// migrates the cache blocks out, and claims the now-contiguous window.
// Its success rate therefore *emerges* from fragmentation caused by the
// competing workload instead of being a tunable.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hw/bandwidth.hpp"
#include "hw/phys_mem.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/cost_model.hpp"
#include "linux_mm/page_cache.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::mm {

/// Linux's order cap: blocks up to 4 MiB.
inline constexpr unsigned kLinuxMaxOrder = 10;
/// Order of a 2 MiB huge page.
inline constexpr unsigned kLargePageOrder = 9;

/// What an allocation had to do; the caller turns this into cycles and
/// classifies the fault for the traces.
struct AllocOutcome {
  Addr addr = 0;
  bool ok = false;
  unsigned split_steps = 0;
  bool entered_reclaim = false;
  bool entered_compaction = false;
  bool compaction_deferred = false; // failed recently; failed fast this time
  std::uint64_t reclaim_clean_blocks = 0;
  std::uint64_t reclaim_writeback_blocks = 0;
  std::uint64_t compaction_windows_scanned = 0;
  std::uint64_t compaction_migrated_bytes = 0;
};

class MemorySystem {
 public:
  MemorySystem(hw::PhysicalMemory& phys, hw::BandwidthModel& bw, Rng rng,
               const CostModel& costs);

  /// Allocate 4KiB<<order from `zone` with the full slow path.
  /// `allow_reclaim` is false for opportunistic callers.
  AllocOutcome alloc_pages(ZoneId zone, unsigned order, bool allow_reclaim = true);

  /// Fast free back to the zone buddy. Returns merge steps.
  unsigned free_pages(ZoneId zone, Addr addr, unsigned order);

  /// Convert an AllocOutcome to cycles (buddy work + reclaim +
  /// compaction; zeroing is charged separately because HugeTLBfs zeroes
  /// at a different rate).
  [[nodiscard]] Cycles alloc_cycles(const AllocOutcome& outcome, ZoneId zone);

  /// kswapd step: if `zone` is below its low watermark, shrink the page
  /// cache toward the high watermark. Returns bytes freed.
  std::uint64_t kswapd_balance(ZoneId zone);

  [[nodiscard]] BuddyAllocator& buddy(ZoneId zone);
  [[nodiscard]] const BuddyAllocator& buddy(ZoneId zone) const;
  [[nodiscard]] PageCache& cache(ZoneId zone);
  [[nodiscard]] std::uint32_t zone_count() const noexcept {
    return static_cast<std::uint32_t>(zones_.size());
  }

  [[nodiscard]] std::uint64_t free_bytes(ZoneId zone) const;
  [[nodiscard]] bool below_low_watermark(ZoneId zone) const;
  [[nodiscard]] bool below_min_watermark(ZoneId zone) const;
  /// Zone with the most free memory (fallback target, NUMA spill).
  [[nodiscard]] ZoneId fallback_zone(ZoneId preferred) const;

  [[nodiscard]] const CostModel& costs() const noexcept { return costs_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] hw::BandwidthModel& bandwidth() noexcept { return bw_; }
  [[nodiscard]] hw::PhysicalMemory& phys() noexcept { return phys_; }

  /// Effective page-zero cost for `size` bytes in `zone` right now.
  [[nodiscard]] Cycles zero_cost(ZoneId zone, std::uint64_t size, double rate_bytes_per_cycle);

  /// Rebuild zone state after memory offlining/onlining changed the
  /// online ranges (HPMMAP module load/unload). The kernel requires
  /// quiesced zones for hot-remove, and so do we: rebuilding discards
  /// allocation state, so it must happen before any workload starts.
  void rebuild_zones();

 private:
  friend struct hpmmap::snapshot::Access;

  struct ZoneState {
    BuddyAllocator buddy;
    PageCache cache;
    std::uint64_t online_bytes;
    Addr compact_cursor;            // rotates through candidate 2M windows
    unsigned compact_defer = 0;     // defer_compaction(): skip attempts after failure
    ZoneState(Range r, std::uint64_t online)
        : buddy(r, kLinuxMaxOrder), cache(buddy), online_bytes(online),
          compact_cursor(r.begin) {}
  };

  /// Honest compaction: try to assemble a free order-kLargePageOrder
  /// window by migrating page-cache blocks. On success the window base
  /// is returned as a genuinely contiguous allocation.
  [[nodiscard]] std::optional<Addr> run_compaction(ZoneState& z, AllocOutcome& outcome);

  /// Can every frame of `window` be made free by migrating cache blocks?
  [[nodiscard]] bool window_movable(const ZoneState& z, Range window) const;

  hw::PhysicalMemory& phys_;
  hw::BandwidthModel& bw_;
  Rng rng_;
  CostModel costs_;
  // deque: ZoneState holds internal references (cache -> buddy), so
  // element addresses must be stable across rebuild_zones().
  std::deque<ZoneState> zones_;
};

} // namespace hpmmap::mm
