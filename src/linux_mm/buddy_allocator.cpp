#include "linux_mm/buddy_allocator.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap::mm {

BuddyAllocator::BuddyAllocator(Range phys_range, unsigned max_order)
    : range_(phys_range), max_order_(max_order) {
  HPMMAP_ASSERT(!range_.empty(), "buddy range must be non-empty");
  HPMMAP_ASSERT(is_aligned(range_.begin, kSmallPageSize) && is_aligned(range_.end, kSmallPageSize),
                "buddy range must be page-aligned");
  HPMMAP_ASSERT(max_order_ < 40, "implausible max order");
  free_lists_.resize(max_order_ + 1);
  // Seed the freelists greedily: the biggest aligned block that fits at
  // the cursor, repeatedly. A section-aligned range seeds straight into
  // max-order blocks.
  Addr cursor = range_.begin;
  while (cursor < range_.end) {
    unsigned order = max_order_;
    while (order > 0 &&
           (!is_aligned(cursor - range_.begin, order_bytes(order)) ||
            cursor + order_bytes(order) > range_.end)) {
      --order;
    }
    HPMMAP_ASSERT(cursor + order_bytes(order) <= range_.end, "seed block overruns range");
    free_lists_[order].insert(cursor);
    free_bytes_ += order_bytes(order);
    cursor += order_bytes(order);
  }
}

unsigned BuddyAllocator::order_for_bytes(std::uint64_t size) noexcept {
  if (size <= kSmallPageSize) {
    return 0;
  }
  const std::uint64_t pages = (size + kSmallPageSize - 1) / kSmallPageSize;
  return static_cast<unsigned>(std::bit_width(pages - 1));
}

Addr BuddyAllocator::buddy_of(Addr addr, unsigned order) const noexcept {
  return range_.begin + ((addr - range_.begin) ^ order_bytes(order));
}

std::optional<BuddyAllocator::Allocation> BuddyAllocator::alloc(unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  unsigned found = order;
  while (found <= max_order_ && free_lists_[found].empty()) {
    ++found;
  }
  if (found > max_order_) {
    ++stats_.failed_allocs;
    if (trace::on(trace::Category::kBuddy)) {
      trace::instant(trace::Category::kBuddy, "buddy.alloc_failed", 0, -1,
                     {trace::Arg::u64("order", order)});
      ++trace::metrics().counter("buddy.alloc_failed");
    }
    return std::nullopt;
  }
  const Addr block = *free_lists_[found].begin();
  free_lists_[found].erase(free_lists_[found].begin());
  // Split down to the requested order, returning the upper halves.
  unsigned splits = 0;
  for (unsigned o = found; o > order; --o) {
    const Addr upper = block + order_bytes(o - 1);
    free_lists_[o - 1].insert(upper);
    ++splits;
  }
  free_bytes_ -= order_bytes(order);
  ++stats_.allocs;
  stats_.split_steps += splits;
  if (splits > 0 && trace::on(trace::Category::kBuddy)) {
    trace::instant(trace::Category::kBuddy, "buddy.split", 0, -1,
                   {trace::Arg::u64("order", order), trace::Arg::u64("splits", splits)});
    trace::metrics().counter("buddy.split_steps") += splits;
  }
  return Allocation{block, splits};
}

unsigned BuddyAllocator::free(Addr addr, unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  HPMMAP_ASSERT(range_.contains(addr), "free outside buddy range");
  HPMMAP_ASSERT(is_aligned(addr - range_.begin, order_bytes(order)),
                "freed block misaligned for its order");
  free_bytes_ += order_bytes(order);
  ++stats_.frees;
  // Coalesce upward while the buddy is free.
  unsigned merges = 0;
  Addr block = addr;
  unsigned o = order;
  while (o < max_order_) {
    const Addr buddy = buddy_of(block, o);
    if (buddy + order_bytes(o) > range_.end) {
      break;
    }
    auto it = free_lists_[o].find(buddy);
    if (it == free_lists_[o].end()) {
      break;
    }
    free_lists_[o].erase(it);
    block = std::min(block, buddy);
    ++o;
    ++merges;
  }
  free_lists_[o].insert(block);
  stats_.merge_steps += merges;
  if (merges > 0 && trace::on(trace::Category::kBuddy)) {
    trace::instant(trace::Category::kBuddy, "buddy.merge", 0, -1,
                   {trace::Arg::u64("order", order), trace::Arg::u64("merges", merges)});
    trace::metrics().counter("buddy.merge_steps") += merges;
  }
  return merges;
}

bool BuddyAllocator::reserve_exact(Addr addr, unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  const Range want{addr, addr + order_bytes(order)};
  if (!range_.contains(want.begin) || want.end > range_.end) {
    return false;
  }
  // A single larger free block may contain the whole region: split it
  // down until the wanted block is an exact free-list entry.
  if (auto container = free_block_containing(addr);
      container.has_value() && container->second > order &&
      Range{container->first, container->first + order_bytes(container->second)}.contains(want)) {
    Addr block = container->first;
    unsigned o = container->second;
    free_lists_[o].erase(block);
    while (o > order) {
      --o;
      const Addr lower = block;
      const Addr upper = block + order_bytes(o);
      if (want.begin >= upper) {
        free_lists_[o].insert(lower);
        block = upper;
      } else {
        free_lists_[o].insert(upper);
        block = lower;
      }
      ++stats_.split_steps;
    }
    HPMMAP_ASSERT(block == addr, "split descent must land on the wanted block");
    free_bytes_ -= order_bytes(order);
    ++stats_.allocs;
    return true;
  }
  // Collect the free blocks covering `want`; they must tile it exactly.
  struct Piece {
    Addr addr;
    unsigned order;
  };
  std::vector<Piece> cover;
  std::uint64_t covered = 0;
  for (unsigned o = 0; o <= max_order_; ++o) {
    // Free blocks intersecting [want) at this order.
    auto it = free_lists_[o].lower_bound(want.begin >= order_bytes(o)
                                             ? want.begin - order_bytes(o) + kSmallPageSize
                                             : 0);
    for (; it != free_lists_[o].end() && *it < want.end; ++it) {
      const Range blk{*it, *it + order_bytes(o)};
      if (!blk.overlaps(want)) {
        continue;
      }
      if (!want.contains(blk)) {
        return false; // a free block straddles the boundary: cannot take exactly
      }
      cover.push_back(Piece{*it, o});
      covered += blk.size();
    }
  }
  if (covered != want.size()) {
    return false; // some of the region is allocated
  }
  for (const Piece& p : cover) {
    free_lists_[p.order].erase(p.addr);
  }
  free_bytes_ -= want.size();
  ++stats_.allocs;
  return true;
}

std::optional<std::pair<Addr, unsigned>> BuddyAllocator::free_block_containing(Addr addr) const {
  if (!range_.contains(addr)) {
    return std::nullopt;
  }
  for (unsigned o = 0; o <= max_order_; ++o) {
    const Addr base = range_.begin + align_down(addr - range_.begin, order_bytes(o));
    if (free_lists_[o].contains(base)) {
      return std::make_pair(base, o);
    }
  }
  return std::nullopt;
}

bool BuddyAllocator::take_free_block(Addr addr, unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  auto it = free_lists_[order].find(addr);
  if (it == free_lists_[order].end()) {
    return false;
  }
  free_lists_[order].erase(it);
  free_bytes_ -= order_bytes(order);
  ++stats_.allocs;
  return true;
}

std::uint64_t BuddyAllocator::free_blocks(unsigned order) const {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  return free_lists_[order].size();
}

std::optional<unsigned> BuddyAllocator::largest_free_order() const {
  for (unsigned o = max_order_ + 1; o-- > 0;) {
    if (!free_lists_[o].empty()) {
      return o;
    }
  }
  return std::nullopt;
}

double BuddyAllocator::fragmentation() const {
  if (free_bytes_ == 0) {
    return 0.0;
  }
  double weighted = 0.0;
  for (unsigned o = 0; o <= max_order_; ++o) {
    const double share =
        static_cast<double>(free_lists_[o].size() * order_bytes(o)) /
        static_cast<double>(free_bytes_);
    weighted += share * static_cast<double>(o);
  }
  return 1.0 - weighted / static_cast<double>(max_order_);
}

bool BuddyAllocator::can_alloc(unsigned order) const {
  for (unsigned o = order; o <= max_order_; ++o) {
    if (!free_lists_[o].empty()) {
      return true;
    }
  }
  return false;
}

void BuddyAllocator::corrupt_insert_free_block(Addr addr, unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  free_lists_[order].insert(addr);
  free_bytes_ += order_bytes(order);
}

bool BuddyAllocator::check_consistency() const {
  std::uint64_t bytes = 0;
  std::vector<Range> blocks;
  for (unsigned o = 0; o <= max_order_; ++o) {
    for (Addr a : free_lists_[o]) {
      if (!range_.contains(a) || a + order_bytes(o) > range_.end) {
        return false;
      }
      if (!is_aligned(a - range_.begin, order_bytes(o))) {
        return false;
      }
      blocks.push_back(Range{a, a + order_bytes(o)});
      bytes += order_bytes(o);
    }
  }
  if (bytes != free_bytes_) {
    return false;
  }
  std::sort(blocks.begin(), blocks.end());
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    if (blocks[i - 1].end > blocks[i].begin) {
      return false; // overlap
    }
  }
  return true;
}

} // namespace hpmmap::mm
