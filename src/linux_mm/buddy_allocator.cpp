#include "linux_mm/buddy_allocator.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace hpmmap::mm {

BuddyAllocator::BuddyAllocator(Range phys_range, unsigned max_order)
    : range_(phys_range), max_order_(max_order), map_(phys_range) {
  HPMMAP_ASSERT(!range_.empty(), "buddy range must be non-empty");
  HPMMAP_ASSERT(is_aligned(range_.begin, kSmallPageSize) && is_aligned(range_.end, kSmallPageSize),
                "buddy range must be page-aligned");
  HPMMAP_ASSERT(max_order_ < 32, "implausible max order");
  lists_.resize(max_order_ + 1);
  for (unsigned o = 0; o <= max_order_; ++o) {
    const std::uint64_t blocks = (range_.size() + order_bytes(o) - 1) / order_bytes(o);
    const std::size_t words = static_cast<std::size_t>((blocks + 63) / 64);
    lists_[o].bits.assign(words, 0);
    lists_[o].summary.assign((words + 63) / 64, 0);
  }
  // Seed the freelists greedily: the biggest aligned block that fits at
  // the cursor, repeatedly. A section-aligned range seeds straight into
  // max-order blocks.
  Addr cursor = range_.begin;
  while (cursor < range_.end) {
    unsigned order = max_order_;
    while (order > 0 &&
           (!is_aligned(cursor - range_.begin, order_bytes(order)) ||
            cursor + order_bytes(order) > range_.end)) {
      --order;
    }
    HPMMAP_ASSERT(cursor + order_bytes(order) <= range_.end, "seed block overruns range");
    insert_block(order, cursor);
    free_bytes_ += order_bytes(order);
    cursor += order_bytes(order);
  }
}

unsigned BuddyAllocator::order_for_bytes(std::uint64_t size) noexcept {
  if (size <= kSmallPageSize) {
    return 0;
  }
  const std::uint64_t pages = (size + kSmallPageSize - 1) / kSmallPageSize;
  return static_cast<unsigned>(std::bit_width(pages - 1));
}

Addr BuddyAllocator::buddy_of(Addr addr, unsigned order) const noexcept {
  return range_.begin + ((addr - range_.begin) ^ order_bytes(order));
}

void BuddyAllocator::insert_block(unsigned order, Addr addr) {
  OrderList& list = lists_[order];
  const std::uint64_t idx = block_index(addr, order);
  const std::size_t w = static_cast<std::size_t>(idx >> 6);
  list.bits[w] |= std::uint64_t{1} << (idx & 63);
  list.summary[w >> 6] |= std::uint64_t{1} << (w & 63);
  ++list.count;
  list.scan_hint = std::min(list.scan_hint, w >> 6);
  map_.set_head(map_.index_of(addr), hw::FrameState::kBuddyFree, order);
}

void BuddyAllocator::remove_block(unsigned order, Addr addr) {
  OrderList& list = lists_[order];
  const std::uint64_t idx = block_index(addr, order);
  const std::size_t w = static_cast<std::size_t>(idx >> 6);
  list.bits[w] &= ~(std::uint64_t{1} << (idx & 63));
  if (list.bits[w] == 0) {
    list.summary[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
  }
  --list.count;
  map_.clear_head(map_.index_of(addr));
}

std::optional<std::uint64_t> BuddyAllocator::first_block(unsigned order) {
  OrderList& list = lists_[order];
  if (list.count == 0) {
    return std::nullopt;
  }
  // scan_hint only ever lags the first set summary bit (pops advance it,
  // inserts lower it), so one forward pass finds the lowest block.
  for (std::size_t s = list.scan_hint; s < list.summary.size(); ++s) {
    if (list.summary[s] != 0) {
      list.scan_hint = s;
      const std::size_t w = s * 64 + static_cast<std::size_t>(std::countr_zero(list.summary[s]));
      return static_cast<std::uint64_t>(w) * 64 +
             static_cast<std::uint64_t>(std::countr_zero(list.bits[w]));
    }
  }
  HPMMAP_ASSERT(false, "buddy freelist count/summary drift");
  return std::nullopt;
}

std::optional<BuddyAllocator::Allocation> BuddyAllocator::alloc(unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  unsigned found = order;
  while (found <= max_order_ && lists_[found].count == 0) {
    ++found;
  }
  if (found > max_order_) {
    ++stats_.failed_allocs;
    if (trace::on(trace::Category::kBuddy)) {
      trace::instant(trace::Category::kBuddy, "buddy.alloc_failed", 0, -1,
                     {trace::Arg::u64("order", order)});
      ++trace::metrics().counter("buddy.alloc_failed");
    }
    return std::nullopt;
  }
  const std::uint64_t idx = *first_block(found);
  const Addr block = range_.begin + (idx << (12 + found));
  remove_block(found, block);
  // Split down to the requested order, returning the upper halves.
  unsigned splits = 0;
  for (unsigned o = found; o > order; --o) {
    insert_block(o - 1, block + order_bytes(o - 1));
    ++splits;
  }
  free_bytes_ -= order_bytes(order);
  ++stats_.allocs;
  stats_.split_steps += splits;
  if (splits > 0 && trace::on(trace::Category::kBuddy)) {
    trace::instant(trace::Category::kBuddy, "buddy.split", 0, -1,
                   {trace::Arg::u64("order", order), trace::Arg::u64("splits", splits)});
    trace::metrics().counter("buddy.split_steps") += splits;
  }
  return Allocation{block, splits};
}

unsigned BuddyAllocator::free(Addr addr, unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  HPMMAP_ASSERT(range_.contains(addr), "free outside buddy range");
  HPMMAP_ASSERT(is_aligned(addr - range_.begin, order_bytes(order)),
                "freed block misaligned for its order");
  free_bytes_ += order_bytes(order);
  ++stats_.frees;
  // Coalesce upward while the buddy is free — one bit probe per level.
  unsigned merges = 0;
  Addr block = addr;
  unsigned o = order;
  while (o < max_order_) {
    const Addr buddy = buddy_of(block, o);
    if (buddy + order_bytes(o) > range_.end) {
      break;
    }
    if (!test_bit(o, block_index(buddy, o))) {
      break;
    }
    remove_block(o, buddy);
    block = std::min(block, buddy);
    ++o;
    ++merges;
  }
  insert_block(o, block);
  stats_.merge_steps += merges;
  if (merges > 0 && trace::on(trace::Category::kBuddy)) {
    trace::instant(trace::Category::kBuddy, "buddy.merge", 0, -1,
                   {trace::Arg::u64("order", order), trace::Arg::u64("merges", merges)});
    trace::metrics().counter("buddy.merge_steps") += merges;
  }
  return merges;
}

bool BuddyAllocator::reserve_exact(Addr addr, unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  const Range want{addr, addr + order_bytes(order)};
  if (!range_.contains(want.begin) || want.end > range_.end) {
    return false;
  }
  // A single larger free block may contain the whole region: split it
  // down until the wanted block is an exact free-list entry.
  if (auto container = free_block_containing(addr);
      container.has_value() && container->second > order &&
      Range{container->first, container->first + order_bytes(container->second)}.contains(want)) {
    Addr block = container->first;
    unsigned o = container->second;
    remove_block(o, block);
    while (o > order) {
      --o;
      const Addr lower = block;
      const Addr upper = block + order_bytes(o);
      if (want.begin >= upper) {
        insert_block(o, lower);
        block = upper;
      } else {
        insert_block(o, upper);
        block = lower;
      }
      ++stats_.split_steps;
    }
    HPMMAP_ASSERT(block == addr, "split descent must land on the wanted block");
    free_bytes_ -= order_bytes(order);
    ++stats_.allocs;
    return true;
  }
  // Collect the free blocks covering `want`; they must tile it exactly.
  struct Piece {
    Addr addr;
    unsigned order;
  };
  std::vector<Piece> cover;
  std::uint64_t covered = 0;
  for (unsigned o = 0; o <= max_order_; ++o) {
    const std::uint64_t ob = order_bytes(o);
    // Free blocks intersecting [want) at this order: the block whose
    // range contains want.begin through the one containing want.end-1.
    const std::uint64_t first = (want.begin - range_.begin) / ob;
    const std::uint64_t last = (want.end - 1 - range_.begin) / ob;
    for (std::uint64_t idx = first; idx <= last; ++idx) {
      if (!test_bit(o, idx)) {
        continue;
      }
      const Addr a = range_.begin + idx * ob;
      if (!want.contains(Range{a, a + ob})) {
        return false; // a free block straddles the boundary: cannot take exactly
      }
      cover.push_back(Piece{a, o});
      covered += ob;
    }
  }
  if (covered != want.size()) {
    return false; // some of the region is allocated
  }
  for (const Piece& p : cover) {
    remove_block(p.order, p.addr);
  }
  free_bytes_ -= want.size();
  ++stats_.allocs;
  return true;
}

std::optional<std::pair<Addr, unsigned>> BuddyAllocator::free_block_containing(Addr addr) const {
  if (!range_.contains(addr)) {
    return std::nullopt;
  }
  const std::uint64_t off = addr - range_.begin;
  for (unsigned o = 0; o <= max_order_; ++o) {
    const std::uint64_t idx = off >> (12 + o);
    if (test_bit(o, idx)) {
      return std::make_pair(range_.begin + (idx << (12 + o)), o);
    }
  }
  return std::nullopt;
}

bool BuddyAllocator::take_free_block(Addr addr, unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  if (!is_free_block(addr, order)) {
    return false;
  }
  remove_block(order, addr);
  free_bytes_ -= order_bytes(order);
  ++stats_.allocs;
  return true;
}

bool BuddyAllocator::is_free_block(Addr addr, unsigned order) const {
  if (order > max_order_ || !range_.contains(addr) ||
      !is_aligned(addr - range_.begin, order_bytes(order))) {
    return false;
  }
  return test_bit(order, block_index(addr, order));
}

std::uint64_t BuddyAllocator::free_blocks(unsigned order) const {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  std::uint64_t n = lists_[order].count;
  for (const auto& [addr, o] : corrupt_blocks_) {
    (void)addr;
    n += o == order ? 1 : 0;
  }
  return n;
}

std::optional<unsigned> BuddyAllocator::largest_free_order() const {
  for (unsigned o = max_order_ + 1; o-- > 0;) {
    if (free_blocks(o) != 0) {
      return o;
    }
  }
  return std::nullopt;
}

double BuddyAllocator::fragmentation() const {
  if (free_bytes_ == 0) {
    return 0.0;
  }
  double weighted = 0.0;
  for (unsigned o = 0; o <= max_order_; ++o) {
    const double share =
        static_cast<double>(free_blocks(o) * order_bytes(o)) / static_cast<double>(free_bytes_);
    weighted += share * static_cast<double>(o);
  }
  return 1.0 - weighted / static_cast<double>(max_order_);
}

bool BuddyAllocator::can_alloc(unsigned order) const {
  for (unsigned o = order; o <= max_order_; ++o) {
    if (lists_[o].count != 0) {
      return true;
    }
  }
  return false;
}

void BuddyAllocator::corrupt_insert_free_block(Addr addr, unsigned order) {
  HPMMAP_ASSERT(order <= max_order_, "order above max_order");
  free_bytes_ += order_bytes(order);
  const bool representable = range_.contains(addr) &&
                             addr + order_bytes(order) <= range_.end &&
                             is_aligned(addr - range_.begin, order_bytes(order));
  if (!representable) {
    // The bitmap cannot hold it; park it where for_each_free_block will
    // still surface it to the auditor.
    corrupt_blocks_.emplace_back(addr, order);
    return;
  }
  if (test_bit(order, block_index(addr, order))) {
    // Duplicate insert: like the historical std::set, the entry is
    // accounted (free_bytes drifts) but not stored twice.
    return;
  }
  insert_block(order, addr);
}

bool BuddyAllocator::check_consistency() const {
  std::uint64_t bytes = 0;
  std::vector<Range> blocks;
  bool ok = true;
  for_each_free_block([&](Addr a, unsigned o) {
    if (!range_.contains(a) || a + order_bytes(o) > range_.end) {
      ok = false;
      return;
    }
    if (!is_aligned(a - range_.begin, order_bytes(o))) {
      ok = false;
      return;
    }
    blocks.push_back(Range{a, a + order_bytes(o)});
    bytes += order_bytes(o);
    // The mem_map must agree that this frame heads a free block.
    const std::uint32_t frame = map_.index_of(a);
    if (map_.state(frame) != hw::FrameState::kBuddyFree || map_.order(frame) != o) {
      ok = false;
    }
  });
  if (!ok || bytes != free_bytes_) {
    return false;
  }
  std::sort(blocks.begin(), blocks.end());
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    if (blocks[i - 1].end > blocks[i].begin) {
      return false; // overlap
    }
  }
  // Bitmap bookkeeping: per-order popcount matches count, summary
  // matches the words.
  for (unsigned o = 0; o <= max_order_; ++o) {
    const OrderList& list = lists_[o];
    std::uint64_t pop = 0;
    for (std::size_t w = 0; w < list.bits.size(); ++w) {
      pop += static_cast<std::uint64_t>(std::popcount(list.bits[w]));
      const bool summarized = (list.summary[w >> 6] >> (w & 63)) & 1u;
      if (summarized != (list.bits[w] != 0)) {
        return false;
      }
    }
    if (pop != list.count) {
      return false;
    }
  }
  return true;
}

} // namespace hpmmap::mm
