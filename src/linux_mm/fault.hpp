// The demand-paging fault handler — the code path whose cost the paper
// measures in Figures 2-5.
//
// Linux backs no allocation until first touch (§II-A); every touch of an
// unbacked page lands here. The handler's cost is composed from the
// mechanisms actually exercised on that fault:
//
//   wait on the PT lock (a khugepaged merge may hold it)
//   + handler entry + VMA lookup
//   + [THP] attempt order-9 allocation (reclaim/compaction under load)
//   + buddy allocation (order 0 fallback; direct reclaim under load)
//   + page zeroing at the contended streaming rate
//   + PTE install + rmap/LRU accounting
//   x lognormal jitter (caches, IRQs)
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/memory_system.hpp"
#include "linux_mm/thp.hpp"

namespace hpmmap::mm {

class SmpDomain;

/// Classification matching the paper's figures: "Small" (red), "Large"
/// (green), "Merge" = a fault that had to wait on a THP merge (blue).
enum class FaultKind : std::uint8_t {
  kSmall,         // 4K anonymous fault
  kLarge,         // 2M fault (THP fault path or hugetlbfs)
  kMergeFollower, // blocked behind a khugepaged merge
  kInvalid,       // segfault (no VMA / bad permissions)
};

/// Number of FaultKind values; sized arrays indexed by FaultKind use
/// this instead of a magic 4.
inline constexpr std::size_t kFaultKindCount = 4;

[[nodiscard]] constexpr std::string_view name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kSmall:         return "Small";
    case FaultKind::kLarge:         return "Large";
    case FaultKind::kMergeFollower: return "Merge";
    case FaultKind::kInvalid:       return "Invalid";
  }
  return "?";
}

struct FaultResult {
  Errno err = Errno::kOk;
  FaultKind kind = FaultKind::kSmall;
  PageSize used = PageSize::k4K;
  Cycles cost = 0;           // total handler residence, incl. lock wait
  Cycles lock_wait = 0;      // portion spent queued on the PT lock
  bool entered_reclaim = false;
};

/// Per-process fault counters, grouped the way Figure 2/3 reports them.
struct FaultStats {
  std::uint64_t count[kFaultKindCount] = {};   // indexed by FaultKind
  Cycles total_cycles[kFaultKindCount] = {};
  void record(FaultKind kind, Cycles cost) noexcept {
    const auto i = static_cast<std::size_t>(kind);
    ++count[i];
    total_cycles[i] += cost;
  }
};

class FaultHandler {
 public:
  /// `thp` may be null (THP disabled); `hugetlb` may be null (no pools).
  FaultHandler(MemorySystem& memory, ThpService* thp, HugetlbPool* hugetlb);

  /// Handle a fault at `vaddr` at simulated time `now`. Does not advance
  /// any clock: the caller charges `result.cost` to the faulting thread.
  /// `core` only tags trace events (per-core Perfetto tracks).
  FaultResult handle(AddressSpace& as, Addr vaddr, Cycles now, std::int32_t core = -1);

  /// With an SmpDomain attached (and core >= 0) the handler *executes*
  /// its lock acquisitions — zone buddy lock (or pcp fast path), PT
  /// shard, pending IPI drain — against the domain's virtual-clock lock
  /// state instead of running the uncontended single-core path.
  void attach_smp(SmpDomain* smp) noexcept { smp_ = smp; }

 private:
  FaultResult handle_hugetlb(AddressSpace& as, const Vma& vma, Addr vaddr, Cycles now,
                             Cycles base_cost, Cycles lock_wait, Cycles merge_wait,
                             std::int32_t core);
  FaultResult finish(FaultResult result, ZoneId zone);

  MemorySystem& memory_;
  ThpService* thp_;
  HugetlbPool* hugetlb_;
  SmpDomain* smp_ = nullptr;
};

} // namespace hpmmap::mm
