// True SMP inside a node: the lock and per-CPU structures concurrent
// faulting cores actually contend on (DESIGN.md §14).
//
// The simulation runs every core of a node as an interleaved actor on
// one discrete-event engine, so a "lock" needs no threads: it is a
// release timestamp on the virtual clock. acquire(now, hold) returns
// the wait this acquirer eats (free_at - now when the lock is still
// held) and extends the release point — FIFO queueing by event order,
// the same idiom AddressSpace::lock_until uses for the khugepaged
// convoy. Contention therefore *emerges* from how core actors happen to
// interleave, instead of being a cost formula in f(cores).
//
// Stamping discipline: every acquire is stamped with the *event's*
// engine time, which is totally ordered across cores — never with a
// worker-private now+cost. Folding a worker's earlier waits into its
// acquire timestamps lets two diverged timelines see each other's
// future holds as spurious wait, and the error compounds exponentially
// with core count. Holds and releases may extend into the future; only
// acquire stamps must ride the global clock.
//
// Three generations of the Linux fault path are switchable per run:
//
//   Linux-1999    one mm-wide page-table lock covering zeroing and PTE
//                 install, every order-0 allocation under the zone lock,
//                 a full IPI shootdown round on every munmap;
//   Linux-today   per-CPU page-frame caches (pcp lists) batching frames
//                 past the zone lock, range-sharded PT locks (the split
//                 page-table-lock analogue, one shard per 2 MiB), and
//                 deferred shootdowns batched into one IPI round;
//   HPMMAP        no SmpDomain at all — per-process management touches
//                 no shared Linux lock (§III-A isolation).
//
// Each feature (pcp, sharding, batching) flips independently so the
// ablation bench can walk the path between the generations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "linux_mm/cost_model.hpp"
#include "linux_mm/memory_system.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::mm {

struct SmpConfig {
  /// Faulting cores modeled (actors the workload drives). Sizes the pcp
  /// array and the IPI fan-out.
  std::uint32_t cores = 1;
  /// Per-CPU page-frame caches in front of the buddy (order-0 only).
  bool pcp = true;
  /// Range-sharded PT locks (per-2MiB shard); off = one mm-wide lock
  /// held across zeroing + install, the Linux-1999 shape.
  bool sharded_pt_locks = true;
  /// Defer munmap shootdowns and flush one IPI round per batch; off =
  /// a full round on every munmap.
  bool batched_shootdowns = true;
  std::uint32_t pcp_batch = 32;       // frames per zone-locked refill
  std::uint32_t pcp_high = 96;        // drain back to pcp_batch above this
  std::uint32_t pt_shards = 64;       // shard count when sharding is on
  std::uint32_t shootdown_batch = 64; // pages deferred per IPI round
};

/// A spinlock on the virtual clock: free_at is when the current holder
/// lets go. Waits are *executed* by the caller charging them to its own
/// timeline, which delays its next event, which is what the next
/// contender observes.
struct SimLock {
  Cycles free_at = 0;

  /// Returns the wait suffered; extends the release point by `hold`.
  Cycles acquire(Cycles now, Cycles hold) noexcept {
    const Cycles start = free_at > now ? free_at : now;
    free_at = start + hold;
    return start - now;
  }
};

/// mmap_sem: readers run in parallel (they only wait out writers);
/// a writer waits out both sides and blocks everything behind it.
struct SimRwSem {
  Cycles writer_free_at = 0;
  Cycles readers_free_at = 0;

  Cycles read_wait(Cycles now) const noexcept {
    return writer_free_at > now ? writer_free_at - now : 0;
  }
  /// Record that a reader holds the sem until `release` (readers never
  /// queue behind each other, so entry and exit are separate steps).
  void read_hold_until(Cycles release) noexcept {
    readers_free_at = std::max(readers_free_at, release);
  }
  Cycles write_acquire(Cycles now, Cycles hold) noexcept {
    const Cycles start = std::max({now, writer_free_at, readers_free_at});
    writer_free_at = start + hold;
    return start - now;
  }
};

/// Deterministic aggregate counters; the bench's ablation table and the
/// telemetry lock-wait series read these.
struct SmpStats {
  Cycles mmap_sem_wait = 0;   // reader + writer wait cycles
  Cycles pt_lock_wait = 0;    // PT lock / shard wait cycles
  Cycles zone_lock_wait = 0;  // zone buddy lock wait cycles
  Cycles ipi_stall = 0;       // cycles cores spent servicing shootdown IPIs
  std::uint64_t pcp_hits = 0;
  std::uint64_t pcp_misses = 0;   // refills taken through the zone lock
  std::uint64_t pcp_refilled_frames = 0;
  std::uint64_t pcp_drains = 0;
  std::uint64_t shootdown_ipis = 0;  // IPI rounds issued
  std::uint64_t shootdown_pages = 0; // pages covered by those rounds

  [[nodiscard]] Cycles total_lock_wait() const noexcept {
    return mmap_sem_wait + pt_lock_wait + zone_lock_wait + ipi_stall;
  }
};

/// Wait/work split of one lock-mediated operation. Callers advance
/// their acquire-stamp clock by `work` only (own holds keep self-waits
/// at zero) and charge `total()` to their timeline — see the stamping
/// discipline in the header comment.
struct LockedOp {
  Cycles wait = 0; // lock-wait cycles suffered
  Cycles work = 0; // service cycles, lock holds included
  [[nodiscard]] Cycles total() const noexcept { return wait + work; }
};

/// Outcome of an order-0 allocation through the SMP fast path.
struct SmallAlloc {
  Addr addr = 0;
  bool ok = false;
  Cycles work = 0;  // service cycles (pcp pop, or refill + buddy work)
  Cycles wait = 0;  // zone-lock wait cycles suffered
  bool entered_reclaim = false;
  bool from_pcp = false;
};

class SmpDomain {
 public:
  SmpDomain(const SmpConfig& config, const CostModel& costs, std::uint32_t zones);

  // --- mmap_sem ---------------------------------------------------------
  /// Reader entry at `now`: wait out any writer. Pair with read_exit once
  /// the fault's residence time is known.
  Cycles mmap_sem_read_enter(Pid pid, Cycles now, std::int32_t core);
  void mmap_sem_read_exit(Pid pid, Cycles release);
  /// Writer (mmap/munmap/brk): waits out readers and writers.
  Cycles mmap_sem_write(Pid pid, Cycles now, Cycles hold, std::int32_t core);

  // --- PT locks ---------------------------------------------------------
  /// Acquire the PT lock covering `vaddr` for `hold` cycles. One mm-wide
  /// lock when sharding is off; the vaddr's 2MiB shard when on.
  Cycles pt_lock(Pid pid, Addr vaddr, Cycles now, Cycles hold, std::int32_t core);

  // --- IPIs -------------------------------------------------------------
  /// Deliver this core's pending shootdown IPIs: the wait until its
  /// interrupt backlog clears. Charged at fault entry.
  Cycles cpu_drain(std::int32_t core, Cycles now);

  // --- frame alloc/free through pcp -------------------------------------
  /// Execute a raw zone-lock acquire for `hold` cycles of buddy work that
  /// happened elsewhere (THP order-9 allocations bypass the pcp lists).
  Cycles zone_lock(ZoneId zone, Cycles now, Cycles hold, std::int32_t core);
  SmallAlloc alloc_small(MemorySystem& mem, ZoneId zone, std::int32_t core, Cycles now);
  /// Free one order-0 frame via this CPU's pcp list (drains above the
  /// high watermark); straight to the zone buddy when pcp is off.
  LockedOp free_small(MemorySystem& mem, ZoneId zone, std::int32_t core, Addr addr, Cycles now);
  /// Zone-locked free for order > 0 blocks (no pcp path exists for them).
  LockedOp free_block(MemorySystem& mem, ZoneId zone, std::int32_t core, Addr addr, unsigned order,
                      Cycles now);

  // --- shootdowns -------------------------------------------------------
  /// Note `pages` leaves unmapped from pid's mm by `core`. Batched mode
  /// defers until shootdown_batch pages are pending; unbatched pays a
  /// full IPI round now. Returns cycles charged to the unmapping core.
  Cycles note_unmap(Pid pid, std::uint64_t pages, std::int32_t core, Cycles now);
  /// Flush pid's pending shootdown pages unconditionally (exit/teardown).
  Cycles flush_shootdowns(Pid pid, std::int32_t core, Cycles now);

  /// Forget a dead process's lock state and pending shootdowns.
  void drop_mm(Pid pid);

  /// Spill every pcp list back into its zone buddy (quiesce points:
  /// pre-audit conservation checks, module hot-remove, teardown).
  void drain_all(MemorySystem& mem);

  [[nodiscard]] const SmpConfig& config() const noexcept { return config_; }
  [[nodiscard]] const SmpStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t zone_count() const noexcept { return zones_; }

  /// Frames currently parked on pcp lists for `zone`, in bytes — the
  /// auditor's conservation term.
  [[nodiscard]] std::uint64_t pcp_cached_bytes(ZoneId zone) const;
  /// Visit every cached frame as (cpu, zone, addr), cpu-major then list
  /// order — the auditor's ownership sweep.
  template <typename Fn>
  void for_each_pcp_frame(Fn&& fn) const {
    for (std::uint32_t cpu = 0; cpu < config_.cores; ++cpu) {
      for (std::uint32_t z = 0; z < zones_; ++z) {
        for (const Addr addr : pcp_[pcp_index(cpu, z)].frames) {
          fn(cpu, z, addr);
        }
      }
    }
  }

  /// Error-injection hook for auditor tests ONLY: append `from_cpu`'s
  /// newest cached frame in `zone` onto `to_cpu`'s list as well, the
  /// double-ownership corruption the pcp audit must catch.
  void corrupt_clone_pcp_frame(std::uint32_t from_cpu, std::uint32_t to_cpu, ZoneId zone);

 private:
  friend struct hpmmap::snapshot::Access;

  /// Per-mm lock state, created lazily per pid (sorted by pid for
  /// deterministic sweeps, binary-searched on the hot path).
  struct MmState {
    Pid pid = 0;
    SimRwSem mmap_sem;
    std::vector<SimLock> pt_shards; // size 1 when sharding is off
    std::uint64_t pending_shootdown_pages = 0;
  };

  struct PcpList {
    std::vector<Addr> frames; // LIFO: back is hottest
  };

  MmState& mm(Pid pid);
  [[nodiscard]] std::size_t pcp_index(std::uint32_t cpu, ZoneId zone) const noexcept {
    return static_cast<std::size_t>(cpu) * zones_ + zone;
  }
  [[nodiscard]] SimLock& pt_shard(MmState& m, Addr vaddr) noexcept;
  /// One IPI round from `core` covering `pages`; stalls every other core
  /// and returns the sender's cost.
  Cycles ipi_round(std::int32_t core, std::uint64_t pages, Cycles now);
  /// Drain `list` down to pcp_batch frames under one zone-lock acquire.
  LockedOp drain_list(MemorySystem& mem, ZoneId zone, PcpList& list, Cycles now,
                    std::size_t down_to);

  SmpConfig config_;
  CostModel costs_;
  std::uint32_t zones_;
  std::vector<SimLock> zone_locks_;   // one per zone
  std::vector<Cycles> cpu_stall_;     // per-core IPI backlog clears at [c]
  std::vector<MmState> mms_;          // sorted by pid
  std::vector<PcpList> pcp_;          // [cpu * zones + zone]
  SmpStats stats_;
};

} // namespace hpmmap::mm
