#include "linux_mm/page_cache.hpp"

#include "common/assert.hpp"

namespace hpmmap::mm {

using hw::FrameState;
using hw::MemMap;

PageCache::PageCache(BuddyAllocator& buddy, double dirty_fraction)
    : buddy_(buddy), dirty_fraction_(dirty_fraction) {}

void PageCache::push_back_block(Addr addr, unsigned order, bool dirty) {
  MemMap& m = buddy_.mem_map();
  const std::uint32_t idx = m.index_of(addr);
  HPMMAP_ASSERT(m.state(idx) == FrameState::kUntracked, "block already cached");
  m.set_head(idx, dirty ? FrameState::kCacheDirty : FrameState::kCacheClean, order);
  m.set_link(idx, MemMap::Link{MemMap::kNil, tail_});
  if (tail_ != MemMap::kNil) {
    m.set_next(tail_, idx);
  } else {
    head_ = idx;
  }
  tail_ = idx;
  ++count_;
  cached_bytes_ += BuddyAllocator::order_bytes(order);
}

void PageCache::unlink(std::uint32_t idx) {
  MemMap& m = buddy_.mem_map();
  const MemMap::Link l = m.link(idx);
  if (l.prev != MemMap::kNil) {
    m.set_next(l.prev, l.next);
  } else {
    head_ = l.next;
  }
  if (l.next != MemMap::kNil) {
    m.set_prev(l.next, l.prev);
  } else {
    tail_ = l.prev;
  }
  m.erase_link(idx);
  --count_;
}

std::uint64_t PageCache::grow(std::uint64_t bytes, unsigned order, bool dirty) {
  std::uint64_t grown = 0;
  const std::uint64_t block_bytes = BuddyAllocator::order_bytes(order);
  while (grown < bytes) {
    if (buddy_.free_bytes() < free_floor_ + block_bytes) {
      break;
    }
    auto alloc = buddy_.alloc(order);
    if (!alloc.has_value()) {
      break;
    }
    // When the caller doesn't force dirtiness, mark blocks dirty at the
    // configured rate using a deterministic rotation (no RNG needed for
    // an aggregate property).
    const bool is_dirty =
        dirty || (dirty_fraction_ > 0.0 &&
                  static_cast<double>(grow_count_ % 100) < dirty_fraction_ * 100.0);
    ++grow_count_;
    push_back_block(alloc->addr, order, is_dirty);
    grown += block_bytes;
  }
  return grown;
}

void PageCache::adopt(Addr addr, unsigned order, bool dirty) {
  push_back_block(addr, order, dirty);
}

PageCache::ShrinkResult PageCache::shrink(std::uint64_t bytes) {
  ShrinkResult result;
  MemMap& m = buddy_.mem_map();
  while (result.bytes_freed < bytes && head_ != MemMap::kNil) {
    const std::uint32_t idx = head_;
    const Addr addr = m.addr_of(idx);
    const unsigned order = m.order(idx);
    const bool dirty = m.state(idx) == FrameState::kCacheDirty;
    unlink(idx);
    m.clear_head(idx);
    const std::uint64_t block_bytes = BuddyAllocator::order_bytes(order);
    buddy_.free(addr, order);
    cached_bytes_ -= block_bytes;
    result.bytes_freed += block_bytes;
    if (dirty) {
      ++result.writeback_blocks;
    } else {
      ++result.clean_blocks;
    }
  }
  return result;
}

void PageCache::clear() {
  MemMap& m = buddy_.mem_map();
  while (head_ != MemMap::kNil) {
    const std::uint32_t idx = head_;
    const Addr addr = m.addr_of(idx);
    const unsigned order = m.order(idx);
    unlink(idx);
    m.clear_head(idx);
    cached_bytes_ -= BuddyAllocator::order_bytes(order);
    buddy_.free(addr, order);
  }
  HPMMAP_ASSERT(cached_bytes_ == 0, "cache accounting drift");
}

void PageCache::relocate(Addr old_addr, Addr new_addr) {
  MemMap& m = buddy_.mem_map();
  const std::uint32_t io = m.index_of(old_addr);
  const FrameState st = m.state(io);
  HPMMAP_ASSERT(st == FrameState::kCacheClean || st == FrameState::kCacheDirty,
                "relocate of a block the cache does not own");
  const unsigned order = m.order(io);
  const MemMap::Link l = m.link(io);
  m.erase_link(io);
  m.clear_head(io);
  const std::uint32_t in = m.index_of(new_addr);
  // The target is normally a freshly-allocated (untracked) block, but
  // only another cache block is an outright error: compaction tests
  // relocate onto raw free space without reserving it first.
  HPMMAP_ASSERT(m.state(in) != FrameState::kCacheClean && m.state(in) != FrameState::kCacheDirty,
                "relocate target already cached");
  m.set_head(in, st, order);
  m.set_link(in, l);
  if (l.prev != MemMap::kNil) {
    m.set_next(l.prev, in);
  } else {
    head_ = in;
  }
  if (l.next != MemMap::kNil) {
    m.set_prev(l.next, in);
  } else {
    tail_ = in;
  }
}

} // namespace hpmmap::mm
