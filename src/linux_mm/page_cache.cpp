#include "linux_mm/page_cache.hpp"

#include "common/assert.hpp"
#include "linux_mm/buddy_allocator.hpp"

namespace hpmmap::mm {

PageCache::PageCache(BuddyAllocator& buddy, double dirty_fraction)
    : buddy_(buddy), dirty_fraction_(dirty_fraction) {}

std::uint64_t PageCache::grow(std::uint64_t bytes, unsigned order, bool dirty) {
  std::uint64_t grown = 0;
  const std::uint64_t block_bytes = BuddyAllocator::order_bytes(order);
  while (grown < bytes) {
    if (buddy_.free_bytes() < free_floor_ + block_bytes) {
      break;
    }
    auto alloc = buddy_.alloc(order);
    if (!alloc.has_value()) {
      break;
    }
    // When the caller doesn't force dirtiness, mark blocks dirty at the
    // configured rate using a deterministic rotation (no RNG needed for
    // an aggregate property).
    const bool is_dirty =
        dirty || (dirty_fraction_ > 0.0 &&
                  static_cast<double>(grow_count_ % 100) < dirty_fraction_ * 100.0);
    ++grow_count_;
    lru_.push_back(Block{alloc->addr, order, is_dirty});
    by_addr_.emplace(alloc->addr, std::prev(lru_.end()));
    grown += block_bytes;
    cached_bytes_ += block_bytes;
  }
  return grown;
}

void PageCache::adopt(Addr addr, unsigned order, bool dirty) {
  HPMMAP_ASSERT(!by_addr_.contains(addr), "block already cached");
  lru_.push_back(Block{addr, order, dirty});
  by_addr_.emplace(addr, std::prev(lru_.end()));
  cached_bytes_ += BuddyAllocator::order_bytes(order);
}

PageCache::ShrinkResult PageCache::shrink(std::uint64_t bytes) {
  ShrinkResult result;
  while (result.bytes_freed < bytes && !lru_.empty()) {
    const Block block = lru_.front();
    by_addr_.erase(block.addr);
    lru_.pop_front();
    const std::uint64_t block_bytes = BuddyAllocator::order_bytes(block.order);
    buddy_.free(block.addr, block.order);
    cached_bytes_ -= block_bytes;
    result.bytes_freed += block_bytes;
    if (block.dirty) {
      ++result.writeback_blocks;
    } else {
      ++result.clean_blocks;
    }
  }
  return result;
}

void PageCache::clear() {
  while (!lru_.empty()) {
    const Block block = lru_.front();
    by_addr_.erase(block.addr);
    lru_.pop_front();
    cached_bytes_ -= BuddyAllocator::order_bytes(block.order);
    buddy_.free(block.addr, block.order);
  }
  HPMMAP_ASSERT(cached_bytes_ == 0, "cache accounting drift");
}

std::optional<std::pair<Addr, unsigned>> PageCache::block_containing(Addr addr) const {
  auto it = by_addr_.upper_bound(addr);
  if (it == by_addr_.begin()) {
    return std::nullopt;
  }
  --it;
  const Block& block = *it->second;
  if (addr < block.addr + BuddyAllocator::order_bytes(block.order)) {
    return std::make_pair(block.addr, block.order);
  }
  return std::nullopt;
}

void PageCache::relocate(Addr old_addr, Addr new_addr) {
  auto it = by_addr_.find(old_addr);
  HPMMAP_ASSERT(it != by_addr_.end(), "relocate of a block the cache does not own");
  auto lru_it = it->second;
  by_addr_.erase(it);
  lru_it->addr = new_addr;
  by_addr_.emplace(new_addr, lru_it);
}

} // namespace hpmmap::mm
