#include "linux_mm/vma.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace hpmmap::mm {

Errno VmaTree::insert(Vma vma) {
  if (vma.range.empty() || !is_aligned(vma.range.begin, kSmallPageSize) ||
      !is_aligned(vma.range.end, kSmallPageSize)) {
    return Errno::kInval;
  }
  // Overlap check against the neighbour before and after.
  auto next = vmas_.lower_bound(vma.range.begin);
  if (next != vmas_.end() && vma.range.overlaps(next->second.range)) {
    return Errno::kExist;
  }
  if (next != vmas_.begin()) {
    auto prev = std::prev(next);
    if (vma.range.overlaps(prev->second.range)) {
      return Errno::kExist;
    }
  }
  auto [it, inserted] = vmas_.emplace(vma.range.begin, vma);
  HPMMAP_ASSERT(inserted, "emplace after overlap check cannot fail");
  merge_around(it);
  return Errno::kOk;
}

void VmaTree::merge_around(std::map<Addr, Vma>::iterator it) {
  // Merge with successor.
  auto next = std::next(it);
  if (next != vmas_.end() && it->second.range.end == next->second.range.begin &&
      it->second.compatible(next->second)) {
    it->second.range.end = next->second.range.end;
    vmas_.erase(next);
  }
  // Merge with predecessor.
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.range.end == it->second.range.begin &&
        prev->second.compatible(it->second)) {
      prev->second.range.end = it->second.range.end;
      vmas_.erase(it);
    }
  }
}

std::vector<Vma> VmaTree::remove(Range range) {
  std::vector<Vma> removed;
  if (range.empty()) {
    return removed;
  }
  // First VMA that could intersect: the one before lower_bound included.
  auto it = vmas_.lower_bound(range.begin);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.range.end > range.begin) {
      it = prev;
    }
  }
  while (it != vmas_.end() && it->second.range.begin < range.end) {
    Vma vma = it->second;
    if (!vma.range.overlaps(range)) {
      ++it;
      continue;
    }
    it = vmas_.erase(it);
    // Head piece survives.
    if (vma.range.begin < range.begin) {
      Vma head = vma;
      head.range.end = range.begin;
      vmas_.emplace(head.range.begin, head);
    }
    // Tail piece survives.
    if (vma.range.end > range.end) {
      Vma tail = vma;
      tail.range.begin = range.end;
      it = vmas_.emplace(tail.range.begin, tail).first;
      ++it;
    }
    // The removed middle.
    Vma mid = vma;
    mid.range.begin = std::max(vma.range.begin, range.begin);
    mid.range.end = std::min(vma.range.end, range.end);
    removed.push_back(mid);
  }
  return removed;
}

Errno VmaTree::protect(Range range, Prot prot) {
  if (range.empty()) {
    return Errno::kInval;
  }
  // Verify full coverage first (mprotect fails on unmapped holes).
  Addr cursor = range.begin;
  auto it = vmas_.lower_bound(range.begin);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.range.end > range.begin) {
      it = prev;
    }
  }
  for (auto scan = it; cursor < range.end; ++scan) {
    if (scan == vmas_.end() || scan->second.range.begin > cursor) {
      return Errno::kNoEnt;
    }
    cursor = scan->second.range.end;
  }
  // Split-and-set.
  std::vector<Vma> pieces = remove(range);
  for (Vma& piece : pieces) {
    piece.prot = prot;
    const Errno err = insert(piece);
    HPMMAP_ASSERT(err == Errno::kOk, "reinsert of removed piece cannot overlap");
  }
  return Errno::kOk;
}

const Vma* VmaTree::find(Addr addr) const {
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  return it->second.range.contains(addr) ? &it->second : nullptr;
}

std::optional<Addr> VmaTree::find_free_topdown(std::uint64_t len, std::uint64_t alignment,
                                               Range window) const {
  HPMMAP_ASSERT(alignment >= kSmallPageSize, "alignment below page size");
  if (len == 0 || window.size() < len) {
    return std::nullopt;
  }
  // Scan gaps from the top of the window downward.
  Addr gap_end = window.end;
  auto it = vmas_.lower_bound(window.end);
  while (true) {
    const Addr gap_begin =
        (it == vmas_.begin()) ? window.begin
                              : std::max(window.begin, std::prev(it)->second.range.end);
    if (gap_end > gap_begin && gap_end - gap_begin >= len) {
      const Addr candidate = align_down(gap_end - len, alignment);
      if (candidate >= gap_begin && candidate >= window.begin) {
        return candidate;
      }
    }
    if (it == vmas_.begin()) {
      return std::nullopt;
    }
    --it;
    gap_end = std::min(window.end, it->second.range.begin);
  }
}

std::uint64_t VmaTree::mapped_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [begin, vma] : vmas_) {
    total += vma.range.size();
  }
  return total;
}

bool VmaTree::check_consistency() const {
  Addr prev_end = 0;
  const Vma* prev = nullptr;
  for (const auto& [begin, vma] : vmas_) {
    if (vma.range.empty() || begin != vma.range.begin) {
      return false;
    }
    if (vma.range.begin < prev_end) {
      return false; // overlap
    }
    if (prev != nullptr && prev->range.end == vma.range.begin && prev->compatible(vma)) {
      return false; // unmerged mergeable neighbours
    }
    prev_end = vma.range.end;
    prev = &vma;
  }
  return true;
}

} // namespace hpmmap::mm
