// Per-process address space: VMA tree + page table + brk state + the
// lock whose hold times the paper measures.
//
// The mmap_sem / page-table-lock convoy is central to Figure 4: while
// khugepaged performs a merge it holds the lock, and every fault arriving
// meanwhile waits until merge completion (§II-B). The lock is modelled as
// a release timestamp on the simulated clock.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/types.hpp"
#include "linux_mm/page_table.hpp"
#include "linux_mm/vma.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::mm {

class AddressSpace {
 public:
  explicit AddressSpace(Pid pid) : pid_(pid) {}

  [[nodiscard]] Pid pid() const noexcept { return pid_; }
  [[nodiscard]] VmaTree& vmas() noexcept { return vmas_; }
  [[nodiscard]] const VmaTree& vmas() const noexcept { return vmas_; }
  [[nodiscard]] PageTable& page_table() noexcept { return pt_; }
  [[nodiscard]] const PageTable& page_table() const noexcept { return pt_; }

  // --- brk ---------------------------------------------------------------
  void set_heap_base(Addr base) noexcept {
    heap_base_ = base;
    heap_end_ = base;
  }
  [[nodiscard]] Addr heap_base() const noexcept { return heap_base_; }
  [[nodiscard]] Addr heap_end() const noexcept { return heap_end_; }
  void set_heap_end(Addr end) noexcept { heap_end_ = end; }

  // --- lock convoy ---------------------------------------------------------
  /// Extend the exclusive hold until at least `until` (merge in
  /// progress). Faults and address-space syscalls queue behind it.
  void lock_until(Cycles until) noexcept {
    if (until > locked_until_) {
      locked_until_ = until;
    }
  }
  /// Cycles a lock acquirer arriving at `now` must wait.
  [[nodiscard]] Cycles lock_wait(Cycles now) const noexcept {
    return locked_until_ > now ? locked_until_ - now : 0;
  }
  [[nodiscard]] bool locked_at(Cycles now) const noexcept { return locked_until_ > now; }

  // --- swap ------------------------------------------------------------------
  /// Reclaim evicted this 4K page to swap; the next fault on it is a
  /// major fault paying a disk read.
  void mark_swapped(Addr page) { swapped_out_.insert(page); }
  /// If `page` was swapped out, clear the mark and return true (the
  /// fault handler charges the swap-in).
  bool take_swapped(Addr page) { return swapped_out_.erase(page) > 0; }
  [[nodiscard]] std::size_t swapped_pages() const noexcept { return swapped_out_.size(); }
  [[nodiscard]] bool is_swapped(Addr page) const { return swapped_out_.contains(page); }
  [[nodiscard]] const std::unordered_set<Addr>& swapped_set() const noexcept {
    return swapped_out_;
  }

  // --- accounting -----------------------------------------------------------
  [[nodiscard]] std::uint64_t rss_bytes() const noexcept { return pt_.mapping_mix().total(); }
  [[nodiscard]] hw::MappingMix mapping_mix() const noexcept { return pt_.mapping_mix(); }

  /// NUMA placement policy for new backing pages. §IV pins the app so
  /// "exactly half its memory was allocated from each NUMA zone (for 1
  /// core tests, all memory came from 1 zone)" — that is kInterleave vs
  /// kSingle here. Interleaving alternates zones per 2 MiB chunk of
  /// virtual address space so both page sizes stripe identically.
  enum class ZonePolicy : std::uint8_t { kSingle, kInterleave };
  void set_zone_policy(ZonePolicy policy, ZoneId home, std::uint32_t zone_count) noexcept {
    zone_policy_ = policy;
    home_zone_ = home;
    zone_count_ = zone_count;
  }
  [[nodiscard]] ZoneId home_zone() const noexcept { return home_zone_; }
  [[nodiscard]] ZoneId zone_for(Addr vaddr) const noexcept {
    if (zone_policy_ == ZonePolicy::kSingle || zone_count_ <= 1) {
      return home_zone_;
    }
    const Addr chunk = vaddr / (2ull * 1024 * 1024);
    return static_cast<ZoneId>(chunk % zone_count_);
  }

 private:
  friend struct hpmmap::snapshot::Access;

  Pid pid_;
  VmaTree vmas_;
  PageTable pt_;
  Addr heap_base_ = 0;
  Addr heap_end_ = 0;
  Cycles locked_until_ = 0;
  std::unordered_set<Addr> swapped_out_;
  ZonePolicy zone_policy_ = ZonePolicy::kSingle;
  ZoneId home_zone_ = 0;
  std::uint32_t zone_count_ = 1;
};

} // namespace hpmmap::mm
