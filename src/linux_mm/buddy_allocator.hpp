// Binary buddy allocator over a contiguous physical range.
//
// This is the zone allocator both stacks stand on: Linux runs one per
// NUMA zone over its online memory, and the same implementation doubles
// as the "Kitten buddy allocator" HPMMAP imposes over offlined ranges
// (§III-A says HPMMAP borrows Kitten's buddy allocator) — the policy
// differences (watermarks, reclaim) live in the callers, not here.
//
// Order 0 is one 4 KiB frame. kMaxOrder covers 4 KiB << kMaxOrder; Linux
// uses 11 (4 MiB); the Kitten instance uses a larger maximum so whole
// 128 MiB+ offlined blocks stay coalesced.
//
// The freelists are per-order bitmaps (bit i = block i of that order is
// free) with a one-level summary (bit j = word j is non-zero), not node
// containers: alloc/free/coalesce are O(1) bit flips per level with zero
// heap traffic, find-first-set pops are address-ordered by construction
// (the determinism contract: the allocator always returns the
// lowest-addressed free block of an order), and the buddy-of test that
// drives coalescing is a single bit probe instead of a set lookup. Head
// frames are mirrored into the owning hw::MemMap so the auditor — and
// the page cache and compaction, which share the map — can resolve
// frame ownership without consulting this class's internals.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "hw/mem_map.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::mm {

struct BuddyStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t split_steps = 0;
  std::uint64_t merge_steps = 0;
  std::uint64_t failed_allocs = 0;
};

class BuddyAllocator {
 public:
  /// Result of a successful allocation; `split_steps` feeds the cost
  /// model (each step is one level of block splitting).
  struct Allocation {
    Addr addr = 0;
    unsigned split_steps = 0;
  };

  /// `max_order`: largest block this instance manages, as a page order.
  BuddyAllocator(Range phys_range, unsigned max_order);

  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;
  BuddyAllocator(BuddyAllocator&&) = default;
  BuddyAllocator& operator=(BuddyAllocator&&) = default;

  /// Allocate a block of 4KiB << order bytes. Returns nullopt when no
  /// free block of at least that order exists (caller decides whether to
  /// reclaim/compact and retry).
  [[nodiscard]] std::optional<Allocation> alloc(unsigned order);

  /// Free a previously allocated block; returns coalesce step count.
  unsigned free(Addr addr, unsigned order);

  /// Remove a specific *free* block from the freelists (used by
  /// compaction to claim a region it assembled). Returns false if any
  /// part of [addr, addr + size(order)) is not currently free.
  [[nodiscard]] bool reserve_exact(Addr addr, unsigned order);

  /// The free block containing `addr`, if any, as (base, order).
  [[nodiscard]] std::optional<std::pair<Addr, unsigned>> free_block_containing(Addr addr) const;

  /// Remove one specific free block (compaction claiming the free holes
  /// inside its target window). Returns false if not free at that order.
  [[nodiscard]] bool take_free_block(Addr addr, unsigned order);

  /// True if the exact block (addr, order) is on the freelist — a single
  /// bit probe; the auditor's inverse check against mem_map ownership.
  [[nodiscard]] bool is_free_block(Addr addr, unsigned order) const;

  [[nodiscard]] std::uint64_t free_bytes() const noexcept { return free_bytes_; }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return range_.size(); }
  [[nodiscard]] std::uint64_t free_blocks(unsigned order) const;
  /// Largest order with at least one free block, or nullopt if empty.
  [[nodiscard]] std::optional<unsigned> largest_free_order() const;

  /// Fragmentation in [0, 1]: 0 when all free memory sits in max-order
  /// blocks, approaching 1 when it is shattered into order-0 frames.
  /// (1 - weighted mean free order / max order.)
  [[nodiscard]] double fragmentation() const;

  /// True if a block of `order` could be satisfied right now.
  [[nodiscard]] bool can_alloc(unsigned order) const;

  [[nodiscard]] const BuddyStats& stats() const noexcept { return stats_; }
  [[nodiscard]] unsigned max_order() const noexcept { return max_order_; }
  [[nodiscard]] Range range() const noexcept { return range_; }

  /// The frame-metadata array for this range. The page cache and hugetlb
  /// pool thread their intrusive state through it; the auditor
  /// cross-checks it against the freelists.
  [[nodiscard]] hw::MemMap& mem_map() noexcept { return map_; }
  [[nodiscard]] const hw::MemMap& mem_map() const noexcept { return map_; }

  [[nodiscard]] static constexpr std::uint64_t order_bytes(unsigned order) noexcept {
    return kSmallPageSize << order;
  }
  [[nodiscard]] static unsigned order_for_bytes(std::uint64_t size) noexcept;

  /// Exhaustive invariant check (free blocks disjoint, aligned, inside
  /// the range; accounting consistent; bitmap/summary/mem_map coherent).
  /// For tests; O(free blocks + bitmap words).
  [[nodiscard]] bool check_consistency() const;

  /// Visit every free block as (base, order), ascending order then
  /// address — the enumeration the invariant auditor sweeps.
  template <typename Fn>
  void for_each_free_block(Fn&& fn) const {
    for (unsigned o = 0; o <= max_order_; ++o) {
      const OrderList& list = lists_[o];
      for (std::size_t w = 0; w < list.bits.size(); ++w) {
        std::uint64_t word = list.bits[w];
        while (word != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
          word &= word - 1;
          fn(range_.begin + ((static_cast<Addr>(w) * 64 + bit) << (12 + o)), o);
        }
      }
      for (const auto& [addr, corder] : corrupt_blocks_) {
        if (corder == o) {
          fn(addr, o);
        }
      }
    }
  }

  /// Error-injection hook for auditor tests ONLY: insert a raw free-list
  /// entry (accounted, but without coalescing or overlap checks), so a
  /// test can seed the corruptions — split buddy pairs, duplicates —
  /// that the public API's eager coalescing makes unreachable.
  void corrupt_insert_free_block(Addr addr, unsigned order);

 private:
  friend struct hpmmap::snapshot::Access;

  /// Per-order free bitmap: bit i = block [begin + i*order_bytes(o),
  /// +order_bytes(o)) is free. `summary` has one bit per bits-word;
  /// `scan_hint` bounds the summary scan from below (monotone under
  /// pops, reset by inserts), making repeated pops amortized O(1).
  struct OrderList {
    std::vector<std::uint64_t> bits;
    std::vector<std::uint64_t> summary;
    std::uint64_t count = 0;
    std::size_t scan_hint = 0;
  };

  [[nodiscard]] Addr buddy_of(Addr addr, unsigned order) const noexcept;
  [[nodiscard]] std::uint64_t block_index(Addr addr, unsigned order) const noexcept {
    return (addr - range_.begin) >> (12 + order);
  }
  [[nodiscard]] bool test_bit(unsigned order, std::uint64_t idx) const noexcept {
    const OrderList& list = lists_[order];
    const std::uint64_t w = idx >> 6;
    return w < list.bits.size() && (list.bits[w] >> (idx & 63)) & 1u;
  }
  void insert_block(unsigned order, Addr addr);
  void remove_block(unsigned order, Addr addr);
  /// Lowest-indexed free block of `order`, or nullopt. Amortized O(1).
  [[nodiscard]] std::optional<std::uint64_t> first_block(unsigned order);

  Range range_;
  unsigned max_order_;
  std::uint64_t free_bytes_ = 0;
  std::vector<OrderList> lists_;
  hw::MemMap map_;
  /// corrupt_insert_free_block() entries the bitmap cannot represent
  /// (out of range / misaligned): kept aside so the auditor's
  /// enumeration still sees them. Always empty outside corruption tests.
  std::vector<std::pair<Addr, unsigned>> corrupt_blocks_;
  BuddyStats stats_;
};

} // namespace hpmmap::mm
