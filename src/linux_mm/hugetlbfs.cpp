#include "linux_mm/hugetlbfs.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "verify/fault_inject.hpp"

namespace hpmmap::mm {

namespace {
constexpr std::uint32_t kNil = hw::MemMap::kNil;
} // namespace

void HugetlbPool::push(ZoneId zone, Addr addr) {
  hw::MemMap& m = memory_.buddy(zone).mem_map();
  HPMMAP_ASSERT(m.contains(addr), "pooled page outside its zone");
  const std::uint32_t idx = m.index_of(addr);
  // No state assertion here: the auditor, not this push, is responsible
  // for flagging a page returned while still mapped (leak detection
  // tests drive exactly that). A page that is already linked — a double
  // free_page — is only re-accounted, never re-linked: relinking would
  // cycle the stack, while a count/chain mismatch is exactly what the
  // auditor's conservation and stack-walk checks exist to catch.
  m.set_head(idx, hw::FrameState::kHugetlbPool, kLargePageOrder);
  if (!m.has_link(idx)) {
    m.set_link(idx, hw::MemMap::Link{pool_[zone].head, kNil});
    pool_[zone].head = idx;
  }
  ++pool_[zone].count;
}

HugetlbPool::HugetlbPool(MemorySystem& memory, std::uint64_t bytes_per_zone)
    : memory_(memory) {
  const std::uint32_t zones = memory_.zone_count();
  pool_.resize(zones);
  total_.assign(zones, 0);
  const std::uint64_t pages = bytes_per_zone / kLargePageSize;
  for (ZoneId z = 0; z < zones; ++z) {
    for (std::uint64_t i = 0; i < pages; ++i) {
      AllocOutcome out = memory_.alloc_pages(z, kLargePageOrder, /*allow_reclaim=*/true);
      HPMMAP_ASSERT(out.ok, "hugetlb boot reservation failed: zone too small/fragmented");
      push(z, out.addr);
    }
    total_[z] = pages;
    stats_.pool_pages_total += pages;
  }
  log_info("hugetlbfs", "reserved %llu x 2M pages per zone across %u zones", static_cast<unsigned long long>(pages), zones);
  trace::instant(trace::Category::kHugetlb, "hugetlb.reserve", 0, -1,
                 {trace::Arg::u64("pages_per_zone", pages), trace::Arg::u64("zones", zones)});
}

HugetlbPool::~HugetlbPool() {
  // Return whatever is still pooled; outstanding pages die with the
  // simulated machine.
  for (ZoneId z = 0; z < pool_.size(); ++z) {
    hw::MemMap& m = memory_.buddy(z).mem_map();
    while (pool_[z].head != kNil) {
      const std::uint32_t idx = pool_[z].head;
      const Addr addr = m.addr_of(idx);
      pool_[z].head = m.link(idx).next;
      m.erase_link(idx);
      m.clear_head(idx);
      --pool_[z].count;
      memory_.free_pages(z, addr, kLargePageOrder);
    }
  }
}

std::optional<std::pair<Addr, ZoneId>> HugetlbPool::alloc_page(ZoneId zone) {
  HPMMAP_ASSERT(zone < pool_.size(), "zone out of range");
  // Injected exhaustion: behave exactly as if every zone's pool were
  // empty (no page leaves the pool, so conservation holds); the caller
  // sees the same SIGBUS-path outcome a real dry pool produces.
  if (verify::injector().should_fail(verify::InjectPoint::kHugetlbAlloc)) {
    ++stats_.pool_exhausted;
    if (trace::on(trace::Category::kHugetlb)) {
      trace::instant(trace::Category::kHugetlb, "hugetlb.pool_exhausted", 0, -1,
                     {trace::Arg::u64("zone", zone)});
      ++trace::metrics().counter("hugetlb.pool_exhausted");
    }
    return std::nullopt;
  }
  for (std::uint32_t probe = 0; probe < pool_.size(); ++probe) {
    const ZoneId z = (zone + probe) % static_cast<ZoneId>(pool_.size());
    if (pool_[z].head == kNil) {
      continue;
    }
    hw::MemMap& m = memory_.buddy(z).mem_map();
    const std::uint32_t idx = pool_[z].head;
    const Addr addr = m.addr_of(idx);
    pool_[z].head = m.link(idx).next;
    m.erase_link(idx);
    m.clear_head(idx);
    --pool_[z].count;
    ++stats_.faults_served;
    if (trace::on(trace::Category::kHugetlb)) {
      trace::instant(trace::Category::kHugetlb, "hugetlb.alloc", 0, -1,
                     {trace::Arg::u64("zone", z),
                      trace::Arg::u64("pool_free", pool_[z].count),
                      trace::Arg::u64("spilled", z == zone ? 0 : 1)});
      ++trace::metrics().counter("hugetlb.pages_served");
    }
    return std::make_pair(addr, z);
  }
  ++stats_.pool_exhausted;
  if (trace::on(trace::Category::kHugetlb)) {
    trace::instant(trace::Category::kHugetlb, "hugetlb.pool_exhausted", 0, -1,
                   {trace::Arg::u64("zone", zone)});
    ++trace::metrics().counter("hugetlb.pool_exhausted");
  }
  return std::nullopt;
}

void HugetlbPool::free_page(ZoneId zone, Addr addr) {
  HPMMAP_ASSERT(zone < pool_.size(), "zone out of range");
  push(zone, addr);
  if (trace::on(trace::Category::kHugetlb)) {
    trace::instant(trace::Category::kHugetlb, "hugetlb.free", 0, -1,
                   {trace::Arg::u64("zone", zone),
                    trace::Arg::u64("pool_free", pool_[zone].count)});
  }
}

std::uint64_t HugetlbPool::free_pages(ZoneId zone) const {
  HPMMAP_ASSERT(zone < pool_.size(), "zone out of range");
  return pool_[zone].count;
}

std::uint64_t HugetlbPool::total_pages(ZoneId zone) const {
  HPMMAP_ASSERT(zone < total_.size(), "zone out of range");
  return total_[zone];
}

} // namespace hpmmap::mm
