#include "serving/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hpmmap::serving {
namespace {

/// Peak instantaneous rate of a config — the thinning envelope for the
/// non-homogeneous shapes.
double peak_rate(const ArrivalConfig& c) {
  switch (c.shape) {
    case ArrivalShape::kPoisson: return c.mean_rps;
    case ArrivalShape::kBursty:  return c.mean_rps * c.burst_factor;
    case ArrivalShape::kDiurnal: return c.mean_rps * c.diurnal_peak_factor;
  }
  return c.mean_rps;
}

constexpr double kPi = 3.14159265358979323846;

/// Instantaneous diurnal rate at time t (seconds into the window): a
/// sine swinging (peak_factor - 1) around the mean, clamped at zero so
/// deep troughs go quiet instead of negative.
double diurnal_rate(const ArrivalConfig& c, double t) {
  const double amplitude = c.mean_rps * (c.diurnal_peak_factor - 1.0);
  const double phase = 2.0 * kPi * static_cast<double>(std::max(1u, c.diurnal_periods)) *
                       t / c.duration_seconds;
  // Start at the trough so a demo window ramps up into its "day".
  return std::max(0.0, c.mean_rps - amplitude * std::cos(phase));
}

} // namespace

bool parse_shape(std::string_view text, ArrivalShape& out) noexcept {
  for (const ArrivalShape s :
       {ArrivalShape::kPoisson, ArrivalShape::kBursty, ArrivalShape::kDiurnal}) {
    if (text == name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

std::vector<ScheduledRequest> generate_schedule(const ArrivalConfig& config,
                                                double clock_hz, Rng rng) {
  HPMMAP_ASSERT(config.mean_rps > 0.0, "arrival rate must be positive");
  HPMMAP_ASSERT(config.duration_seconds > 0.0, "arrival window must be positive");
  std::vector<ScheduledRequest> schedule;
  schedule.reserve(static_cast<std::size_t>(config.mean_rps * config.duration_seconds * 1.2));

  // Independent streams: arrival instants never perturb per-request work
  // draws, so changing the load shape leaves request contents untouched.
  Rng gaps = rng.fork("arrival.gaps");
  Rng work = rng.fork("arrival.work");
  Rng phases = rng.fork("arrival.phases");

  double t = 0.0; // seconds into the window
  // Bursty state: alternate exponential on/off phases. Off-phase rate is
  // derived so the long-run mean holds:
  //   on_frac * factor * r_off_base + (1 - on_frac) * r_off = mean.
  bool burst_on = false;
  double phase_ends = 0.0;
  const double mean_off_seconds =
      config.mean_burst_seconds * (1.0 - config.burst_fraction) /
      std::max(1e-9, config.burst_fraction);
  const double off_rate =
      config.mean_rps * std::max(0.0, 1.0 - config.burst_fraction * config.burst_factor) /
      std::max(1e-9, 1.0 - config.burst_fraction);

  const double envelope = peak_rate(config);
  while (true) {
    // Thinning (Lewis & Shedler): candidate gaps at the envelope rate,
    // accepted with probability rate(t)/envelope. For the homogeneous
    // and bursty shapes the acceptance test is exact too.
    t += gaps.exponential(1.0 / envelope);
    if (t >= config.duration_seconds) {
      break;
    }
    double rate = envelope;
    switch (config.shape) {
      case ArrivalShape::kPoisson:
        rate = config.mean_rps;
        break;
      case ArrivalShape::kBursty: {
        while (t >= phase_ends) {
          burst_on = !burst_on;
          phase_ends +=
              phases.exponential(burst_on ? config.mean_burst_seconds : mean_off_seconds);
        }
        rate = burst_on ? config.mean_rps * config.burst_factor : off_rate;
        break;
      }
      case ArrivalShape::kDiurnal:
        rate = diurnal_rate(config, t);
        break;
    }
    if (rate < envelope && !gaps.chance(rate / envelope)) {
      continue;
    }
    ScheduledRequest req;
    req.arrival = static_cast<Cycles>(t * clock_hz);
    req.object_key = work.next_u64();
    req.size_quantile = work.uniform_double();
    req.work_jitter = work.lognormal_from_moments(1.0, 0.25);
    schedule.push_back(req);
  }
  return schedule;
}

} // namespace hpmmap::serving
