#include "serving/slab.hpp"

#include <algorithm>

namespace hpmmap::serving {

SlabArena::SlabArena(os::Node& node, os::Process& proc) : node_(node), proc_(proc) {
  for (std::uint64_t bytes = kMinClassBytes; bytes <= kMaxClassBytes; bytes *= 2) {
    SizeClass cls;
    cls.bytes = bytes;
    classes_.push_back(std::move(cls));
  }
}

SlabArena::~SlabArena() {
  // The owner normally calls release_all() to charge teardown cycles;
  // falling off the end without it just drops bookkeeping (the process
  // exit path unmaps everything anyway).
}

std::size_t SlabArena::class_index(std::uint64_t bytes) const noexcept {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (bytes <= classes_[i].bytes) {
      return i;
    }
  }
  return classes_.size();
}

SlabArena::Alloc SlabArena::allocate(std::uint64_t bytes) {
  Alloc out;
  const std::size_t ci = class_index(std::max<std::uint64_t>(bytes, 1));
  if (ci == classes_.size()) {
    // Over-threshold: direct mmap + full first-touch, like glibc malloc
    // falling through to mmap for big buffers.
    const std::uint64_t len = align_up(bytes, kSmallPageSize);
    const os::Node::SysOut res =
        node_.sys_mmap(proc_, len, kProtRW, os::Node::Segment::kHeapData);
    out.cost += res.cost;
    out.large = true;
    if (res.err != Errno::kOk) {
      ++stats_.alloc_failures;
      return out;
    }
    out.addr = res.addr;
    out.cost += node_.touch_range(proc_, Range{res.addr, res.addr + len});
    ++stats_.large_allocs;
    return out;
  }

  SizeClass& cls = classes_[ci];
  ++stats_.objects_allocated;
  if (!cls.freelist.empty()) {
    out.addr = cls.freelist.back();
    cls.freelist.pop_back();
    ++stats_.objects_recycled;
    return out; // already mapped and touched: the steady-state fast path
  }
  if (cls.carve_pos >= cls.carve_end) {
    // Class ran out of slab: map a fresh chunk through the backing
    // manager's mmap path.
    const os::Node::SysOut res =
        node_.sys_mmap(proc_, kChunkBytes, kProtRW, os::Node::Segment::kHeapData);
    out.cost += res.cost;
    if (res.err != Errno::kOk) {
      ++stats_.alloc_failures;
      return out;
    }
    cls.carve_pos = res.addr;
    cls.carve_end = res.addr + kChunkBytes;
    cls.touched = res.addr;
    chunks_.push_back(Range{res.addr, res.addr + kChunkBytes});
    ++stats_.chunks_mapped;
    stats_.bytes_mapped += kChunkBytes;
    mapped_bytes_ += kChunkBytes;
  }
  out.addr = cls.carve_pos;
  cls.carve_pos += cls.bytes;
  // First-touch the pages this carve reaches into — the demand-paging
  // cost that distinguishes the managers.
  const Addr touch_to = align_up(cls.carve_pos, kSmallPageSize);
  if (touch_to > cls.touched) {
    out.cost += node_.touch_range(proc_, Range{cls.touched, touch_to});
    cls.touched = touch_to;
  }
  return out;
}

Cycles SlabArena::free(Addr addr, std::uint64_t bytes) {
  if (addr == 0) {
    return 0;
  }
  const std::size_t ci = class_index(std::max<std::uint64_t>(bytes, 1));
  if (ci == classes_.size()) {
    const std::uint64_t len = align_up(bytes, kSmallPageSize);
    return node_.sys_munmap(proc_, addr, len).cost;
  }
  classes_[ci].freelist.push_back(addr);
  return 0;
}

Cycles SlabArena::release_all() {
  Cycles cost = 0;
  for (const Range& chunk : chunks_) {
    cost += node_.sys_munmap(proc_, chunk.begin, chunk.size()).cost;
  }
  chunks_.clear();
  for (SizeClass& cls : classes_) {
    cls.freelist.clear();
    cls.carve_pos = cls.carve_end = cls.touched = 0;
  }
  mapped_bytes_ = 0;
  return cost;
}

} // namespace hpmmap::serving
