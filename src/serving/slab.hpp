// Slab-style object arena on top of the simulated mm fault path.
//
// A request/response server churns small allocations per request; real
// allocators (tcmalloc/jemalloc, the kernel's slab) amortize that churn
// by carving size-class slabs out of large mapped chunks and recycling
// freed objects through per-class freelists. What matters to the memory
// manager underneath is exactly that shape:
//
//   - steady state touches only already-mapped pages (no faults);
//   - load ramps and bursts outgrow the freelists, map fresh 2 MiB
//     chunks through sys_mmap, and first-touch them — a fault storm on
//     whichever manager backs the process (THP huge faults + khugepaged
//     merges, hugetlbfs pool pages or 4K spill, HPMMAP large pages);
//   - allocations beyond the largest size class bypass the slabs
//     entirely (malloc's mmap threshold): one mmap + touch + munmap per
//     request, which keeps the allocation syscall path hot per-request
//     rather than only at ramp time.
//
// Everything is charged through os::Node's syscall and touch_range
// entry points, so the arena adds no cost model of its own — the
// manager-dependent costs are the existing fault path's.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "os/node.hpp"

namespace hpmmap::serving {

struct SlabStats {
  std::uint64_t objects_allocated = 0; // slab-class allocations served
  std::uint64_t objects_recycled = 0;  // of those, served from a freelist
  std::uint64_t chunks_mapped = 0;     // fresh 2 MiB slabs mmap'd
  std::uint64_t large_allocs = 0;      // over-threshold direct mmaps
  std::uint64_t bytes_mapped = 0;      // cumulative slab bytes mapped
  std::uint64_t alloc_failures = 0;    // ENOMEM from the backing manager
};

/// Per-process slab arena. One instance per service worker; not shared
/// (workers are separate simulated processes).
class SlabArena {
 public:
  /// Size classes double from 256 B to 512 KiB; larger requests take the
  /// direct-mmap path. The threshold sits above the service's default
  /// request-size ceiling on purpose: a real server allocator keeps even
  /// its big response buffers in recycled spans rather than paying an
  /// mmap round trip per request.
  static constexpr std::uint64_t kMinClassBytes = 256;
  static constexpr std::uint64_t kMaxClassBytes = 512 * KiB;
  static constexpr std::uint64_t kChunkBytes = 2 * MiB;

  SlabArena(os::Node& node, os::Process& proc);
  ~SlabArena();
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  struct Alloc {
    Addr addr = 0;     // 0 on failure
    Cycles cost = 0;   // syscall + fault cycles charged
    bool large = false; // took the direct-mmap path
  };

  /// Allocate `bytes`. Slab classes recycle freed objects; fresh carves
  /// first-touch their pages; over-threshold sizes mmap directly.
  [[nodiscard]] Alloc allocate(std::uint64_t bytes);

  /// Return an allocation. Slab objects go back on their class freelist
  /// (no syscall); large ones are munmap'd.
  Cycles free(Addr addr, std::uint64_t bytes);

  /// Unmap every chunk and forget the freelists (worker teardown).
  Cycles release_all();

  [[nodiscard]] const SlabStats& stats() const noexcept { return stats_; }
  /// Pages of the arena currently mapped (chunks only, not large objects).
  [[nodiscard]] std::uint64_t mapped_bytes() const noexcept { return mapped_bytes_; }

 private:
  /// Index of the smallest class holding `bytes`; classes_.size() when
  /// over threshold.
  [[nodiscard]] std::size_t class_index(std::uint64_t bytes) const noexcept;

  struct SizeClass {
    std::uint64_t bytes = 0;
    std::vector<Addr> freelist;
    // Carve cursor into the newest chunk owned by this class.
    Addr carve_pos = 0;
    Addr carve_end = 0;
    Addr touched = 0; // first-touch high-water mark within the chunk
  };

  os::Node& node_;
  os::Process& proc_;
  std::vector<SizeClass> classes_;
  std::vector<Range> chunks_; // all mapped slab chunks, for release_all
  SlabStats stats_;
  std::uint64_t mapped_bytes_ = 0;
};

} // namespace hpmmap::serving
