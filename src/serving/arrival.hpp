// Open-loop load generation for the serving subsystem.
//
// An open-loop generator emits requests on a schedule that does not
// depend on how fast the service drains them — the datacenter reality
// ("millions of users" do not slow down because your p99 regressed).
// That is what makes tail latency and SLO violations the honest metric:
// under overload, queueing delay and shedding show up instead of the
// throughput silently stretching, the coordinated-omission artifact of
// closed-loop benchmarks.
//
// The whole schedule is materialized up front as a deterministic pure
// function of (config, clock, seed): every manager under comparison sees
// the *same* arrival instants and the *same* per-request work (common
// random numbers), and the schedule is byte-identical across --jobs
// values and with telemetry sampling on or off because nothing on the
// engine consumes from its RNG stream.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hpmmap::serving {

/// Arrival-process shapes. All share the same long-run mean rate; they
/// differ in how the instantaneous rate moves around it.
enum class ArrivalShape : std::uint8_t {
  kPoisson, // homogeneous Poisson: exponential gaps at the mean rate
  kBursty,  // Markov-modulated Poisson: exponential on/off bursts
  kDiurnal, // sinusoidal rate (a day compressed into the window)
};

[[nodiscard]] constexpr std::string_view name(ArrivalShape s) noexcept {
  switch (s) {
    case ArrivalShape::kPoisson: return "poisson";
    case ArrivalShape::kBursty:  return "bursty";
    case ArrivalShape::kDiurnal: return "diurnal";
  }
  return "?";
}

/// Parse "poisson" / "bursty" / "diurnal"; false on an unknown name.
[[nodiscard]] bool parse_shape(std::string_view text, ArrivalShape& out) noexcept;

struct ArrivalConfig {
  ArrivalShape shape = ArrivalShape::kPoisson;
  /// Long-run mean request rate (requests per simulated second).
  double mean_rps = 2000.0;
  /// Open-loop window length; requests arriving inside it are emitted.
  double duration_seconds = 1.0;

  // --- bursty (Markov-modulated Poisson) -----------------------------------
  /// Instantaneous-rate multiplier while a burst is on. The off-phase
  /// rate is derived so the long-run mean stays `mean_rps`.
  double burst_factor = 4.0;
  /// Long-run fraction of time spent bursting.
  double burst_fraction = 0.2;
  /// Mean burst (on-phase) length in seconds.
  double mean_burst_seconds = 0.05;

  // --- diurnal -------------------------------------------------------------
  /// Peak rate / mean rate; the trough is mirrored below the mean
  /// (factor 2.0 means the rate swings between 0 and 2x the mean).
  double diurnal_peak_factor = 2.0;
  /// Full sine periods inside the window ("days").
  std::uint32_t diurnal_periods = 1;
};

/// One scheduled request: the arrival instant plus the per-request draws
/// every backend must see identically (common random numbers). Work
/// parameters are dimensionless keys the service maps onto actual sizes,
/// so one schedule drives any service configuration.
struct ScheduledRequest {
  Cycles arrival = 0;  // offset from the serving window's t0
  std::uint64_t object_key = 0; // uniform draw the service maps via Zipf
  double size_quantile = 0.0;   // uniform [0,1): allocation-size draw
  double work_jitter = 1.0;     // lognormal around 1: service-time noise
};

/// Materialize the whole schedule. Deterministic in (config, clock_hz,
/// rng state); arrivals are non-decreasing in time.
[[nodiscard]] std::vector<ScheduledRequest> generate_schedule(const ArrivalConfig& config,
                                                              double clock_hz, Rng rng);

} // namespace hpmmap::serving
