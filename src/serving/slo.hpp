// SLO accounting for the serving subsystem.
//
// A serving deployment is judged by how often it breaks its latency
// promises, not by its mean. The accountant counts, per configured
// budget, the requests that completed over budget — and the requests
// that never completed at all because admission shed them; a shed
// request is a broken promise to its user too, so it counts against
// every budget.
//
// The latency recorder pairs the streaming P² tail estimator with an
// exact reservoir sample. P² is O(1) memory but approximate; the
// reservoir keeps a uniform subset and computes exact order statistics
// over it, which bounds the streaming estimate and backs the
// differential test in tests/test_stats.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace hpmmap::serving {

/// Uniform sample of a stream (Vitter's algorithm R), deterministic in
/// the Rng handed in. Quantiles are exact over the retained sample.
class ReservoirSample {
 public:
  ReservoirSample(std::size_t capacity, Rng rng);

  void add(double x);
  /// Exact q-quantile (nearest rank) of the retained sample; 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t size() const noexcept { return sample_.size(); }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::uint64_t seen_ = 0;
  std::vector<double> sample_;
};

/// One latency promise: requests slower than `budget` cycles violate it.
struct SloBudget {
  std::string label;  // e.g. "p99<2ms"
  Cycles budget = 0;
};

class SloAccountant {
 public:
  explicit SloAccountant(std::vector<SloBudget> budgets);

  /// A request finished with the given end-to-end latency.
  void on_complete(Cycles latency) noexcept;
  /// A request was shed at admission — violates every budget.
  void on_shed() noexcept;

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_; }
  [[nodiscard]] std::size_t budget_count() const noexcept { return budgets_.size(); }
  [[nodiscard]] const SloBudget& budget(std::size_t i) const { return budgets_[i]; }
  /// Violations of budget i: over-budget completions plus all sheds.
  [[nodiscard]] std::uint64_t violations(std::size_t i) const { return violations_[i]; }
  /// Sum of violations across budgets — the headline scalar.
  [[nodiscard]] std::uint64_t total_violations() const noexcept;

 private:
  std::vector<SloBudget> budgets_;
  std::vector<std::uint64_t> violations_;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_ = 0;
};

/// Streaming tails plus exact cross-check over one latency stream.
class LatencyRecorder {
 public:
  static constexpr std::size_t kReservoirCapacity = 4096;

  explicit LatencyRecorder(Rng rng) : reservoir_(kReservoirCapacity, rng.fork("reservoir")) {}

  void add(double latency) {
    tails_.add(latency);
    reservoir_.add(latency);
  }

  [[nodiscard]] const TailQuantiles& tails() const noexcept { return tails_; }
  [[nodiscard]] const ReservoirSample& reservoir() const noexcept { return reservoir_; }

 private:
  TailQuantiles tails_;
  ReservoirSample reservoir_;
};

} // namespace hpmmap::serving
