#include "serving/slo.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace hpmmap::serving {

ReservoirSample::ReservoirSample(std::size_t capacity, Rng rng)
    : capacity_(capacity), rng_(rng) {
  HPMMAP_ASSERT(capacity > 0, "reservoir needs room for at least one sample");
  sample_.reserve(capacity);
}

void ReservoirSample::add(double x) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Algorithm R: element n survives with probability capacity/n.
  const std::uint64_t j = rng_.next_u64() % seen_;
  if (j < capacity_) {
    sample_[static_cast<std::size_t>(j)] = x;
  }
}

double ReservoirSample::quantile(double q) const {
  if (sample_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = sample_;
  const double clamped = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::size_t>(clamped * static_cast<double>(sorted.size()));
  rank = std::min(rank, sorted.size() - 1);
  auto nth = sorted.begin() + static_cast<std::ptrdiff_t>(rank);
  std::nth_element(sorted.begin(), nth, sorted.end());
  return *nth;
}

SloAccountant::SloAccountant(std::vector<SloBudget> budgets)
    : budgets_(std::move(budgets)), violations_(budgets_.size(), 0) {}

void SloAccountant::on_complete(Cycles latency) noexcept {
  ++completed_;
  for (std::size_t i = 0; i < budgets_.size(); ++i) {
    if (latency > budgets_[i].budget) {
      ++violations_[i];
    }
  }
}

void SloAccountant::on_shed() noexcept {
  ++shed_;
  for (std::uint64_t& v : violations_) {
    ++v;
  }
}

std::uint64_t SloAccountant::total_violations() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t v : violations_) {
    total += v;
  }
  return total;
}

} // namespace hpmmap::serving
