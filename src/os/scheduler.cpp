#include "os/scheduler.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/trace.hpp"

namespace hpmmap::os {

Scheduler::Scheduler(std::uint32_t cores) : pinned_weight_(cores, 0.0), core_load_(cores, 0.0) {
  HPMMAP_ASSERT(cores > 0, "need at least one core");
}

Scheduler::Thread& Scheduler::checked(ThreadId id, const char* what) {
  HPMMAP_ASSERT(id.valid() && id.id <= threads_.size(), "bad thread id");
  Thread& t = threads_[id.id - 1];
  HPMMAP_ASSERT(t.gen == id.gen, "stale thread id (slot was recycled)");
  HPMMAP_ASSERT(t.live, what);
  return t;
}

Scheduler::ThreadId Scheduler::add_thread(std::int32_t core, double weight) {
  HPMMAP_ASSERT(core < static_cast<std::int32_t>(pinned_weight_.size()), "core out of range");
  HPMMAP_ASSERT(weight >= 0.0 && weight <= 1.0, "weight is a duty cycle");
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(threads_.size());
    threads_.push_back(Thread{core, weight, 1, true});
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    Thread& t = threads_[slot];
    t.core = core;
    t.weight = weight;
    t.live = true; // generation was bumped at remove time
  }
  ++live_count_;
  if (core >= 0) {
    pinned_weight_[static_cast<std::size_t>(core)] += weight;
  } else {
    unpinned_weight_ += weight;
  }
  dirty_ = true;
  if (trace::on(trace::Category::kSched)) {
    trace::instant(trace::Category::kSched, "sched.add_thread", 0, core,
                   {trace::Arg::u64("tid", slot + 1), trace::Arg::f64("weight", weight)});
    trace::counter(trace::Category::kSched, "sched.total_weight", total_weight());
  }
  return ThreadId{slot + 1, threads_[slot].gen};
}

void Scheduler::remove_thread(ThreadId id) {
  Thread& t = checked(id, "double remove");
  if (t.core >= 0) {
    pinned_weight_[static_cast<std::size_t>(t.core)] -= t.weight;
  } else {
    unpinned_weight_ -= t.weight;
  }
  t.live = false;
  ++t.gen; // invalidate outstanding handles before the slot is reused
  free_slots_.push_back(id.id - 1);
  HPMMAP_ASSERT(live_count_ > 0, "remove with no live threads");
  --live_count_;
  dirty_ = true;
  if (trace::on(trace::Category::kSched)) {
    trace::instant(trace::Category::kSched, "sched.remove_thread", 0, t.core,
                   {trace::Arg::u64("tid", id.id)});
    trace::counter(trace::Category::kSched, "sched.total_weight", total_weight());
  }
}

void Scheduler::set_weight(ThreadId id, double weight) {
  Thread& t = checked(id, "weight change on dead thread");
  if (t.core >= 0) {
    pinned_weight_[static_cast<std::size_t>(t.core)] += weight - t.weight;
  } else {
    unpinned_weight_ += weight - t.weight;
  }
  t.weight = weight;
  dirty_ = true;
  if (trace::on(trace::Category::kSched)) {
    trace::instant(trace::Category::kSched, "sched.set_weight", 0, t.core,
                   {trace::Arg::u64("tid", id.id), trace::Arg::f64("weight", weight)});
  }
}

void Scheduler::recompute() const {
  if (!dirty_) {
    return;
  }
  // Water-fill the unpinned demand over the cores: find level L with
  // sum_c max(0, L - pinned_c) = unpinned. Then core load = max(pinned, L).
  std::vector<double> sorted = pinned_weight_;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double remaining = unpinned_weight_;
  double level = 0.0;
  double filled = 0.0; // cores at or below the current level
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double step = sorted[i] - level;
    const double need = step * filled;
    if (need >= remaining) {
      break;
    }
    remaining -= need;
    level = sorted[i];
    filled += 1.0;
  }
  if (filled > 0.0) {
    level += remaining / filled;
  } else if (remaining > 0.0) {
    // Every core starts above zero pinned load: spread over all.
    level = sorted.empty() ? 0.0 : sorted[0];
    level += remaining / n;
  }
  water_level_ = level;
  for (std::size_t c = 0; c < pinned_weight_.size(); ++c) {
    core_load_[c] = std::max(pinned_weight_[c], water_level_);
  }
  dirty_ = false;
}

double Scheduler::dilation(std::int32_t core) const {
  recompute();
  if (core < 0) {
    return std::max(1.0, water_level_);
  }
  HPMMAP_ASSERT(core < static_cast<std::int32_t>(core_load_.size()), "core out of range");
  return std::max(1.0, core_load_[static_cast<std::size_t>(core)]);
}

double Scheduler::oversubscription() const {
  const double total = total_weight();
  const double n = static_cast<double>(pinned_weight_.size());
  return std::max(1.0, total / n);
}

double Scheduler::total_weight() const {
  double total = unpinned_weight_;
  for (double w : pinned_weight_) {
    total += w;
  }
  return total;
}

} // namespace hpmmap::os
