// Process control block for the simulated node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/fault.hpp"
#include "os/scheduler.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::os {

/// Which memory manager backs this process's address-space syscalls.
/// §IV's three configurations: THP (plain Linux with THP), HugeTLBfs
/// (pools for the app, THP off), HPMMAP (module-managed app).
enum class MmPolicy : std::uint8_t { kLinuxThp, kLinuxPlain, kHugetlbfs, kHpmmap };

[[nodiscard]] constexpr std::string_view name(MmPolicy p) noexcept {
  switch (p) {
    case MmPolicy::kLinuxThp:   return "Linux (THP)";
    case MmPolicy::kLinuxPlain: return "Linux (4K)";
    case MmPolicy::kHugetlbfs:  return "Linux (HugeTLBfs)";
    case MmPolicy::kHpmmap:     return "HPMMAP";
  }
  return "?";
}

class Process {
 public:
  Process(Pid pid, std::string proc_name, MmPolicy policy)
      : pid_(pid), name_(std::move(proc_name)), policy_(policy), as_(pid) {}

  [[nodiscard]] Pid pid() const noexcept { return pid_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] MmPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] mm::AddressSpace& address_space() noexcept { return as_; }
  [[nodiscard]] const mm::AddressSpace& address_space() const noexcept { return as_; }

  // --- scheduling -------------------------------------------------------
  void set_core(std::int32_t core) noexcept { core_ = core; }
  [[nodiscard]] std::int32_t core() const noexcept { return core_; }
  void set_sched_handle(Scheduler::ThreadId id) noexcept { sched_ = id; }
  [[nodiscard]] Scheduler::ThreadId sched_handle() const noexcept { return sched_; }

  // --- fault accounting ----------------------------------------------------
  // Aggregate counters only; per-fault events go through the trace
  // subsystem (trace/trace.hpp) under Category::kFault.
  [[nodiscard]] mm::FaultStats& fault_stats() noexcept { return fault_stats_; }
  [[nodiscard]] const mm::FaultStats& fault_stats() const noexcept { return fault_stats_; }
  void record_fault(Cycles when, mm::FaultKind kind, Cycles cost) {
    (void)when;
    fault_stats_.record(kind, cost);
  }

  [[nodiscard]] bool alive() const noexcept { return alive_; }
  void mark_dead() noexcept { alive_ = false; }

 private:
  friend struct hpmmap::snapshot::Access;

  Pid pid_;
  std::string name_;
  MmPolicy policy_;
  mm::AddressSpace as_;
  std::int32_t core_ = -1;
  Scheduler::ThreadId sched_{};
  mm::FaultStats fault_stats_;
  bool alive_ = true;
};

} // namespace hpmmap::os
