// CPU time-sharing model.
//
// The evaluation co-locates HPC ranks (pinned, §IV) with kernel-build
// jobs (explicitly "not pinned to any memory or cores"). Rather than
// simulating CFS tick by tick, the model solves the steady-state fair
// share: unpinned load water-fills across cores, and a thread's wall
// time is its CPU demand times the load ("dilation") of the core it runs
// on. Profile B's core overcommit (8 app cores + two 8-way builds on 12
// cores) produces dilation > 1 for the app; profile A's does not — which
// is exactly the asymmetry Figure 7 shows.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::os {

class Scheduler {
 public:
  explicit Scheduler(std::uint32_t cores);

  /// Slot index + generation: thread slots are recycled after
  /// remove_thread (kernel-build churn spawns and retires thousands of
  /// jobs per run), and the generation check turns a stale handle into a
  /// hard assert instead of silently aliasing the slot's next tenant.
  struct ThreadId {
    std::uint32_t id = 0; // 1-based slot; 0 = invalid
    std::uint32_t gen = 0;
    [[nodiscard]] bool valid() const noexcept { return id != 0; }
  };

  /// Register a runnable thread. `core` < 0 means unpinned; `weight` is
  /// its CPU duty cycle in [0, 1] (build jobs stall on I/O, ~0.6).
  ThreadId add_thread(std::int32_t core, double weight);
  void remove_thread(ThreadId id);
  /// Change a thread's demand (e.g. a build job entering its link phase).
  void set_weight(ThreadId id, double weight);

  /// Load factor (>= 1) experienced by a thread pinned to `core`, or by
  /// an unpinned thread (pass -1): its wall time per CPU cycle.
  [[nodiscard]] double dilation(std::int32_t core) const;

  /// Node-wide oversubscription: total runnable weight / cores, floored
  /// at 1. Feeds the khugepaged preemption model.
  [[nodiscard]] double oversubscription() const;

  [[nodiscard]] std::uint32_t cores() const noexcept {
    return static_cast<std::uint32_t>(pinned_weight_.size());
  }
  [[nodiscard]] double total_weight() const;
  /// Size of the internal slot table — bounded by peak concurrent
  /// threads, not by lifetime churn (regression hook for the tests).
  [[nodiscard]] std::size_t thread_slots() const noexcept { return threads_.size(); }
  [[nodiscard]] std::size_t live_threads() const noexcept { return live_count_; }

 private:
  friend struct hpmmap::snapshot::Access;

  struct Thread {
    std::int32_t core;
    double weight;
    std::uint32_t gen;
    bool live;
  };
  [[nodiscard]] Thread& checked(ThreadId id, const char* what);
  void recompute() const;

  std::vector<Thread> threads_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  std::vector<double> pinned_weight_;      // per-core pinned demand
  double unpinned_weight_ = 0.0;
  mutable std::vector<double> core_load_;  // solved loads
  mutable double water_level_ = 0.0;
  mutable bool dirty_ = true;
};

} // namespace hpmmap::os
