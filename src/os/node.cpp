#include "os/node.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"

namespace hpmmap::os {
namespace {

/// Default segment sizes every process gets at exec (text, data/BSS,
/// stack reserve). Small next to the app's data, but the source of the
/// residual small faults even HPMMAP processes take.
constexpr std::uint64_t kTextBytes = 8 * MiB;
constexpr std::uint64_t kDataBytes = 16 * MiB;

} // namespace

Node::Node(sim::Engine& engine, NodeConfig config)
    : engine_(engine),
      config_(std::move(config)),
      phys_(config_.machine.ram_bytes, config_.machine.numa_zones),
      bw_(config_.machine.numa_zones, config_.machine.zone_bandwidth_bytes_per_cycle),
      tlb_(config_.machine.tlb),
      scheduler_(config_.machine.total_cores()),
      rng_(Rng(config_.seed).fork(config_.name)) {
  // Boot order matters: the module's hot-remove must precede zone
  // freelist construction, and the hugetlb reservation must run on
  // pristine zones.
  if (config_.hpmmap.has_value()) {
    module_ = std::make_unique<core::HpmmapModule>(phys_, bw_, config_.costs,
                                                   rng_.fork("hpmmap"), *config_.hpmmap);
  }
  memory_ = std::make_unique<mm::MemorySystem>(phys_, bw_, rng_.fork("mm"), config_.costs);
  if (config_.thp_enabled) {
    thp_ = std::make_unique<mm::ThpService>(*memory_, engine_,
                                            [this] { return scheduler_.oversubscription(); });
    thp_->start_khugepaged(config_.machine.clock_hz);
  }
  if (config_.hugetlb_pool_per_zone > 0) {
    hugetlb_ = std::make_unique<mm::HugetlbPool>(*memory_, config_.hugetlb_pool_per_zone);
  }
  fault_handler_ = std::make_unique<mm::FaultHandler>(*memory_, thp_.get(), hugetlb_.get());
  if (config_.smp.has_value()) {
    smp_ = std::make_unique<mm::SmpDomain>(*config_.smp, config_.costs, memory_->zone_count());
    fault_handler_->attach_smp(smp_.get());
  }
  if (config_.aged_boot) {
    age_system();
  }
  schedule_kswapd();
}

void Node::age_system() {
  // Reproduce the memory state of a machine with uptime: unmovable slab
  // allocations scattered through each zone (fragmenting the freelists)
  // and a page cache holding most of what is left. The scatter pattern —
  // allocate a large population of mixed-order blocks, then free most of
  // it — is how real fragmentation forms: frees coalesce only where
  // neighbours also freed.
  Rng aging = rng_.fork("aging");
  for (ZoneId z = 0; z < memory_->zone_count(); ++z) {
    mm::BuddyAllocator& buddy = memory_->buddy(z);
    const std::uint64_t online = buddy.total_bytes();
    const auto slab_target =
        static_cast<std::uint64_t>(config_.boot_slab_fraction * static_cast<double>(online));

    std::vector<std::pair<Addr, unsigned>> churn;
    std::uint64_t slab_held = 0;
    // Allocate ~4x the slab target in mixed small orders...
    while (slab_held < 4 * slab_target) {
      const unsigned order = static_cast<unsigned>(aging.uniform(5)); // 0..4
      auto a = buddy.alloc(order);
      if (!a.has_value()) {
        break;
      }
      churn.push_back({a->addr, order});
      slab_held += mm::BuddyAllocator::order_bytes(order);
    }
    // ...then release three quarters at random. What stays allocated is
    // the resident slab; the holes it leaves are the fragmentation.
    for (const auto& [addr, order] : churn) {
      if (aging.chance(0.75)) {
        buddy.free(addr, order);
      }
    }
    // Fill the page cache with a realistic mixed-order population.
    const auto cache_target =
        static_cast<std::uint64_t>(config_.boot_cache_fraction * static_cast<double>(online));
    mm::PageCache& cache = memory_->cache(z);
    cache.set_dirty_fraction(0.2);
    std::uint64_t cached = 0;
    while (cached < cache_target) {
      const unsigned order = 2 + static_cast<unsigned>(aging.uniform(5)); // 2..6
      const std::uint64_t want = std::min<std::uint64_t>(
          cache_target - cached, mm::BuddyAllocator::order_bytes(order));
      const std::uint64_t got = cache.grow(want, order, /*dirty=*/false);
      if (got == 0) {
        break;
      }
      cached += got;
    }
  }
}

Node::~Node() {
  if (thp_ != nullptr) {
    thp_->stop_khugepaged();
  }
  engine_.cancel(kswapd_event_);
  // Unregister any survivors so the module's unload invariants hold.
  for (auto& proc : processes_) {
    if (proc->alive()) {
      exit_process(*proc);
    }
  }
}

void Node::schedule_kswapd() {
  // kswapd wakes every ~4 ms and rebalances zones toward their high
  // watermark, off the critical path.
  const auto period = static_cast<Cycles>(config_.machine.clock_hz * 0.004);
  kswapd_event_ = engine_.schedule(period, [this] { kswapd_tick(); });
}

void Node::kswapd_tick() {
  for (ZoneId z = 0; z < memory_->zone_count(); ++z) {
    memory_->kswapd_balance(z);
  }
  schedule_kswapd();
}

Process& Node::spawn(std::string proc_name, MmPolicy policy, std::int32_t core, double duty,
                     mm::AddressSpace::ZonePolicy zone_policy, ZoneId home_zone) {
  const Pid pid = next_pid_++;
  processes_.push_back(std::make_unique<Process>(pid, std::move(proc_name), policy));
  Process& proc = *processes_.back();
  proc.set_core(core);
  proc.set_sched_handle(scheduler_.add_thread(core, duty));
  mm::AddressSpace& as = proc.address_space();
  as.set_zone_policy(zone_policy, home_zone, config_.machine.numa_zones);

  // exec() layout: text, data/BSS, heap base after data, stack reserve.
  mm::Vma text;
  text.range = Range{mm::AddressLayout::kTextBase, mm::AddressLayout::kTextBase + kTextBytes};
  text.prot = kProtRX;
  text.kind = mm::VmaKind::kText;
  HPMMAP_ASSERT(as.vmas().insert(text) == Errno::kOk, "fresh AS cannot collide");

  mm::Vma data;
  data.range = Range{text.range.end, text.range.end + kDataBytes};
  data.prot = kProtRW;
  data.kind = mm::VmaKind::kData;
  HPMMAP_ASSERT(as.vmas().insert(data) == Errno::kOk, "fresh AS cannot collide");
  as.set_heap_base(data.range.end);

  mm::Vma stack;
  stack.range = Range{mm::AddressLayout::kStackTop - mm::AddressLayout::kStackMax,
                      mm::AddressLayout::kStackTop};
  stack.prot = kProtRW;
  stack.kind = mm::VmaKind::kStack;
  HPMMAP_ASSERT(as.vmas().insert(stack) == Errno::kOk, "fresh AS cannot collide");

  if (policy == MmPolicy::kHpmmap) {
    HPMMAP_ASSERT(module_ != nullptr, "HPMMAP policy on a node without the module");
    const Errno err = module_->register_process(pid, as);
    HPMMAP_ASSERT(err == Errno::kOk, "PID registration failed");
  }
  if (thp_ != nullptr &&
      (policy == MmPolicy::kLinuxThp || policy == MmPolicy::kLinuxPlain)) {
    thp_->register_process(&as);
  }
  trace::instant(trace::Category::kApp, "proc.spawn", pid, core);
  return proc;
}

void Node::exit_process(Process& proc) {
  HPMMAP_ASSERT(proc.alive(), "double exit");
  if (thp_ != nullptr) {
    thp_->unregister_process(&proc.address_space());
  }
  if (module_ != nullptr && module_->handles(proc.pid())) {
    module_->unregister_process(proc.pid());
  }
  // Release all Linux-managed memory VMA by VMA (everything in the
  // HPMMAP window was already dropped by the module above).
  std::vector<Range> ranges;
  proc.address_space().vmas().for_each(
      [&](const mm::Vma& vma) { ranges.push_back(vma.range); });
  for (const Range& r : ranges) {
    release_linux_range(proc, r, proc.core());
    proc.address_space().vmas().remove(r);
  }
  if (smp_ != nullptr) {
    // exit_mmap: the last deferred shootdown round fires, then the mm's
    // lock state (and pending counter) disappears with the mm itself.
    smp_->flush_shootdowns(proc.pid(), proc.core(), engine_.now());
    smp_->drop_mm(proc.pid());
  }
  scheduler_.remove_thread(proc.sched_handle());
  proc.mark_dead();
  trace::instant(trace::Category::kApp, "proc.exit", proc.pid(), proc.core());
}

bool Node::is_hpmmap_call(const Process& proc, Cycles& hash_cost) const {
  if (module_ == nullptr) {
    return false;
  }
  // Every syscall pays the PID-hash probe once the module is loaded
  // (Figure 6); a miss falls through to the original handler.
  hash_cost += config_.costs.hpmmap_hash_lookup;
  return module_->handles(proc.pid());
}

Node::SysOut Node::sys_mmap(Process& proc, std::uint64_t len, Prot prot, Segment seg,
                            std::int32_t core) {
  Cycles hash_cost = 0;
  if (is_hpmmap_call(proc, hash_cost) && seg != Segment::kStack) {
    const core::SyscallResult r = module_->mmap(proc.pid(), len, prot);
    return SysOut{r.err, r.addr, r.cost + hash_cost};
  }
  SysOut out = linux_mmap(proc, len, prot, seg, core);
  out.cost += hash_cost;
  return out;
}

Node::SysOut Node::linux_mmap(Process& proc, std::uint64_t len, Prot prot, Segment seg,
                              std::int32_t core) {
  SysOut out;
  const mm::CostModel& costs = config_.costs;
  out.cost = costs.syscall_entry + costs.vma_mutate;
  if (len == 0) {
    out.err = Errno::kInval;
    return out;
  }
  mm::AddressSpace& as = proc.address_space();
  // mmap writers queue behind a merge holding the lock too.
  out.cost += as.lock_wait(engine_.now());
  if (smp_ != nullptr) {
    // mmap_sem writer: waits out every in-flight reader (faulting cores)
    // and holds through the VMA mutation, stalling them in turn.
    out.cost += smp_->mmap_sem_write(proc.pid(), engine_.now(), costs.vma_mutate,
                                     core >= 0 ? core : proc.core());
  }

  mm::Vma vma;
  bool hugetlb_backed = proc.policy() == MmPolicy::kHugetlbfs &&
                        seg == Segment::kHeapData && hugetlb_ != nullptr;
  if (hugetlb_backed && rng_.chance(config_.hugetlbfs_small_spill)) {
    hugetlb_backed = false; // libhugetlbfs fallback: ordinary 4K anon
  }
  const std::uint64_t alignment = hugetlb_backed ? kLargePageSize : kSmallPageSize;
  const std::uint64_t alen = align_up(len, alignment);
  const auto addr = as.vmas().find_free_topdown(
      alen, alignment, Range{mm::AddressLayout::kMmapBottom, mm::AddressLayout::kMmapTop});
  if (!addr.has_value()) {
    out.err = Errno::kNoMem;
    return out;
  }
  vma.range = Range{*addr, *addr + alen};
  vma.prot = prot;
  if (hugetlb_backed) {
    vma.kind = mm::VmaKind::kHugetlb;
    vma.hugetlb_size = PageSize::k2M;
  } else {
    vma.kind = seg == Segment::kStack ? mm::VmaKind::kStack : mm::VmaKind::kAnon;
    vma.thp_eligible = config_.thp_enabled && proc.policy() == MmPolicy::kLinuxThp &&
                       seg != Segment::kStack && alen >= kLargePageSize;
  }
  const Errno err = as.vmas().insert(vma);
  HPMMAP_ASSERT(err == Errno::kOk, "find_free_topdown returned an occupied range");
  out.addr = *addr;
  return out;
}

Node::SysOut Node::sys_brk(Process& proc, Addr new_break) {
  Cycles hash_cost = 0;
  if (is_hpmmap_call(proc, hash_cost)) {
    const core::SyscallResult r = module_->brk(proc.pid(), new_break);
    return SysOut{r.err, r.addr, r.cost + hash_cost};
  }
  SysOut out = linux_brk(proc, new_break);
  out.cost += hash_cost;
  return out;
}

Node::SysOut Node::linux_brk(Process& proc, Addr new_break) {
  SysOut out;
  const mm::CostModel& costs = config_.costs;
  out.cost = costs.syscall_entry;
  mm::AddressSpace& as = proc.address_space();
  if (new_break == 0) {
    out.addr = as.heap_end();
    return out;
  }
  if (new_break < as.heap_base()) {
    out.err = Errno::kInval;
    out.addr = as.heap_end();
    return out;
  }
  out.cost += as.lock_wait(engine_.now()) + costs.vma_mutate;
  if (smp_ != nullptr) {
    out.cost += smp_->mmap_sem_write(proc.pid(), engine_.now(), costs.vma_mutate, proc.core());
  }

  const bool hugetlb_backed = proc.policy() == MmPolicy::kHugetlbfs && hugetlb_ != nullptr;
  const std::uint64_t alignment = hugetlb_backed ? kLargePageSize : kSmallPageSize;
  const Addr old_top = align_up(as.heap_end(), alignment);
  const Addr new_top = align_up(new_break, alignment);
  if (new_top > old_top) {
    mm::Vma vma;
    vma.range = Range{old_top, new_top};
    vma.prot = kProtRW;
    if (hugetlb_backed) {
      vma.kind = mm::VmaKind::kHugetlb;
      vma.hugetlb_size = PageSize::k2M;
    } else {
      vma.kind = mm::VmaKind::kHeap;
      vma.thp_eligible = config_.thp_enabled && proc.policy() == MmPolicy::kLinuxThp;
    }
    const Errno err = as.vmas().insert(vma);
    if (err != Errno::kOk) {
      out.err = Errno::kNoMem;
      out.addr = as.heap_end();
      return out;
    }
  } else if (new_top < old_top) {
    out.cost += release_linux_range(proc, Range{new_top, old_top});
    as.vmas().remove(Range{new_top, old_top});
  }
  as.set_heap_end(new_break);
  out.addr = new_break;
  return out;
}

Node::SysOut Node::sys_munmap(Process& proc, Addr addr, std::uint64_t len, std::int32_t core) {
  Cycles hash_cost = 0;
  if (is_hpmmap_call(proc, hash_cost) && core::HpmmapModule::in_window(addr)) {
    const core::SyscallResult r = module_->munmap(proc.pid(), addr, len);
    return SysOut{r.err, r.addr, r.cost + hash_cost};
  }
  SysOut out;
  const mm::CostModel& costs = config_.costs;
  mm::AddressSpace& as = proc.address_space();
  const std::int32_t c = core >= 0 ? core : proc.core();
  out.cost = hash_cost + costs.syscall_entry + costs.vma_mutate +
             as.lock_wait(engine_.now());
  const Range range{align_down(addr, kSmallPageSize), align_up(addr + len, kSmallPageSize)};
  const Cycles release = release_linux_range(proc, range, c);
  if (smp_ != nullptr) {
    // The munmap writer holds mmap_sem across the VMA removal and the
    // page-table teardown — the whole reason threaded mmap churn scales
    // so poorly on stock Linux (§II-A).
    out.cost += smp_->mmap_sem_write(proc.pid(), engine_.now(), costs.vma_mutate + release, c);
  }
  out.cost += release;
  as.vmas().remove(range);
  return out;
}

Node::SysOut Node::sys_mprotect(Process& proc, Addr addr, std::uint64_t len, Prot prot) {
  Cycles hash_cost = 0;
  if (is_hpmmap_call(proc, hash_cost) && core::HpmmapModule::in_window(addr)) {
    const core::SyscallResult r = module_->mprotect(proc.pid(), addr, len, prot);
    return SysOut{r.err, r.addr, r.cost + hash_cost};
  }
  SysOut out;
  const mm::CostModel& costs = config_.costs;
  mm::AddressSpace& as = proc.address_space();
  out.cost = hash_cost + costs.syscall_entry + costs.vma_mutate +
             as.lock_wait(engine_.now());
  const Range range{align_down(addr, kSmallPageSize), align_up(addr + len, kSmallPageSize)};
  const Errno err = as.vmas().protect(range, prot);
  if (err != Errno::kOk) {
    out.err = err;
    return out;
  }
  // Update any installed leaves and pay the shootdown.
  for (Addr va = range.begin; va < range.end;) {
    const auto t = as.page_table().walk(va);
    if (t.has_value()) {
      const Addr leaf_base = align_down(va, bytes(t->size));
      as.page_table().protect(leaf_base, t->size, prot);
      out.cost += costs.pte_install;
      va = leaf_base + bytes(t->size);
    } else {
      va += kSmallPageSize;
    }
  }
  out.cost += costs.tlb_flush_full;
  return out;
}

Node::SysOut Node::sys_mlock(Process& proc, Addr addr, std::uint64_t len) {
  SysOut out;
  const mm::CostModel& costs = config_.costs;
  mm::AddressSpace& as = proc.address_space();
  out.cost = costs.syscall_entry + costs.vma_mutate + as.lock_wait(engine_.now());
  const Range range{align_down(addr, kSmallPageSize), align_up(addr + len, kSmallPageSize)};
  // Populate first (mlock guarantees residency), then split any large
  // pages (THP cannot pin compound pages, §II-B), then mark locked.
  out.cost += touch_range(proc, range);
  if (thp_ != nullptr) {
    const unsigned splits = thp_->split_for_mlock(as, range);
    // Each split rewrites a PT page worth of PTEs (512), batched ~8 wide.
    out.cost += splits * (costs.pt_alloc_table + 512 * costs.pte_install / 8);
  }
  std::vector<mm::Vma> pieces = as.vmas().remove(range);
  for (mm::Vma& piece : pieces) {
    piece.locked = true;
    piece.thp_eligible = false;
    HPMMAP_ASSERT(as.vmas().insert(piece) == Errno::kOk, "reinsert cannot overlap");
  }
  return out;
}

Cycles Node::release_linux_range(Process& proc, Range range, std::int32_t core) {
  mm::AddressSpace& as = proc.address_space();
  const mm::CostModel& costs = config_.costs;
  // Acquire stamps ride engine_.now() + own work only (never + waits),
  // so a teardown delayed by contention can't push its later acquires
  // into the future and charge other cores phantom wait (see the
  // stamping discipline in linux_mm/smp.hpp).
  Cycles work = 0;
  Cycles wait = 0;
  const bool pcp_frees = smp_ != nullptr && smp_->config().pcp;

  // Collect leaves, batching physically contiguous 4K frames into
  // higher-order frees (demand-faulted pages are frequently contiguous
  // thanks to the buddy's address-ordered pops).
  struct Run {
    Addr phys_begin = 0;
    Addr phys_end = 0;
    ZoneId zone = 0;
    bool active = false;
  };
  Run run;
  std::uint64_t leaves = 0;

  const auto flush_run = [&] {
    if (!run.active) {
      return;
    }
    if (pcp_frees) {
      // free_unref_page: order-0 frames recycle through this CPU's pcp
      // list (no coalescing — the refill path hands them straight back
      // to the next faulting thread on this CPU).
      for (Addr p = run.phys_begin; p < run.phys_end; p += kSmallPageSize) {
        const mm::LockedOp op =
            smp_->free_small(*memory_, run.zone, core, p, engine_.now() + work);
        wait += op.wait;
        work += op.work;
      }
      run.active = false;
      return;
    }
    Addr p = run.phys_begin;
    while (p < run.phys_end) {
      // Largest order that is aligned at p and fits.
      unsigned order = 0;
      while (order < mm::kLinuxMaxOrder &&
             is_aligned(p, mm::BuddyAllocator::order_bytes(order + 1)) &&
             p + mm::BuddyAllocator::order_bytes(order + 1) <= run.phys_end) {
        ++order;
      }
      if (smp_ != nullptr) {
        const mm::LockedOp op =
            smp_->free_block(*memory_, run.zone, core, p, order, engine_.now() + work);
        wait += op.wait;
        work += op.work;
      } else {
        memory_->free_pages(run.zone, p, order);
      }
      p += mm::BuddyAllocator::order_bytes(order);
    }
    run.active = false;
  };

  Addr va = range.begin;
  // Walk mapped leaves; skip unmapped space at the page-table's natural
  // stride to stay O(mapped + gaps/2M).
  while (va < range.end) {
    const auto t = as.page_table().walk(va);
    if (!t.has_value()) {
      // Skip to the next 2M boundary if the whole PT is empty there.
      const Addr next2m = align_down(va, kLargePageSize) + kLargePageSize;
      if (as.page_table().small_count_in_2m(va) == 0) {
        va = next2m;
      } else {
        va += kSmallPageSize;
      }
      continue;
    }
    const Addr leaf_base = align_down(va, bytes(t->size));
    const Addr frame = align_down(t->phys, bytes(t->size));
    as.page_table().unmap(leaf_base, t->size);
    ++leaves;
    work += costs.pte_install;

    const ZoneId zone = phys_.zone_of(frame);
    if (t->size == PageSize::k4K && !phys_.is_offline(frame)) {
      if (run.active && frame == run.phys_end && zone == run.zone) {
        run.phys_end += kSmallPageSize;
      } else {
        flush_run();
        run = Run{frame, frame + kSmallPageSize, zone, true};
      }
    } else {
      flush_run();
      if (t->size == PageSize::k2M && as.vmas().find(leaf_base) != nullptr &&
          as.vmas().find(leaf_base)->kind == mm::VmaKind::kHugetlb && hugetlb_ != nullptr) {
        hugetlb_->free_page(zone, frame);
      } else if (!phys_.is_offline(frame)) {
        const unsigned order = mm::BuddyAllocator::order_for_bytes(bytes(t->size));
        if (smp_ != nullptr) {
          const mm::LockedOp op =
              smp_->free_block(*memory_, zone, core, frame, order, engine_.now() + work);
          wait += op.wait;
          work += op.work;
        } else {
          memory_->free_pages(zone, frame, order);
        }
      }
      // Offlined frames belong to the module; it frees them itself.
    }
    va = leaf_base + bytes(t->size);
  }
  flush_run();
  // The unmapping core always flushes its own TLB; remote cores get IPI
  // rounds — deferred and batched, or one round per munmap (Linux-1999).
  work += leaves > 32 ? costs.tlb_flush_full : leaves * costs.tlb_flush_page;
  if (smp_ != nullptr && leaves > 0) {
    work += smp_->note_unmap(proc.pid(), leaves, core, engine_.now() + work);
  }
  return work + wait;
}

Cycles Node::touch_range(Process& proc, Range range, std::int32_t core) {
  Cycles cost = 0;
  Cycles work = 0; // SMP acquire-stamp clock: cost minus suffered waits
  mm::AddressSpace& as = proc.address_space();
  const std::int32_t c = core >= 0 ? core : proc.core();
  const bool is_hpmmap_addr =
      module_ != nullptr && module_->handles(proc.pid()) && core::HpmmapModule::in_window(range.begin);
  Addr va = align_down(range.begin, kSmallPageSize);
  while (va < range.end) {
    const auto t = as.page_table().walk(va);
    if (t.has_value()) {
      va = align_down(va, bytes(t->size)) + bytes(t->size);
      continue;
    }
    mm::FaultResult fr;
    if (is_hpmmap_addr) {
      fr = module_->fault(proc.pid(), va, engine_.now() + cost, c);
    } else if (smp_ != nullptr && c >= 0) {
      // The fault path runs under mmap_sem for reading: wait out any
      // mmap/munmap writer, handle the fault, then release at the
      // handler's exit so a writer arriving meanwhile queues behind us.
      // Acquires are stamped at engine time plus this slice's *work*
      // only — folding suffered waits into the stamp would let diverged
      // worker timelines charge each other compounding phantom wait
      // (stamping discipline, linux_mm/smp.hpp).
      const Cycles t0 = engine_.now() + work;
      const Cycles sem_wait = smp_->mmap_sem_read_enter(proc.pid(), t0, c);
      fr = fault_handler_->handle(as, va, t0, c);
      fr.lock_wait += sem_wait;
      fr.cost += sem_wait;
      smp_->mmap_sem_read_exit(proc.pid(), engine_.now() + cost + fr.cost);
      work += fr.cost - fr.lock_wait;
    } else {
      fr = fault_handler_->handle(as, va, engine_.now() + cost, c);
    }
    proc.record_fault(engine_.now() + cost, fr.kind, fr.cost);
    cost += fr.cost;
    if (fr.err == Errno::kOk && fr.used == PageSize::k4K && !is_hpmmap_addr) {
      remember_anon_page(proc, align_down(va, kSmallPageSize));
      if (fr.entered_reclaim) {
        maybe_swap(as.zone_for(va));
      }
    }
    if (fr.err != Errno::kOk) {
      HPMMAP_LOG_WARN_LIMITED(fault_warn_limiter_, "node", "fault failed at %llx for pid %u: %s",
                              static_cast<unsigned long long>(va), proc.pid(),
                              name(fr.err).data());
      va += kSmallPageSize; // skip; workload generators treat it as lost work
      continue;
    }
    va = align_down(va, bytes(fr.used)) + bytes(fr.used);
  }
  return cost;
}

Cycles Node::compute_burst(Process& proc, Cycles cpu_work, std::uint64_t mem_accesses,
                           double locality) {
  const hw::MappingMix mix = proc.address_space().mapping_mix();
  const ZoneId zone = proc.address_space().home_zone();
  // Bandwidth contention stretches the memory-bound share of the burst —
  // including the page walks, whose PTE fetches are DRAM accesses too.
  const double bw_factor = bw_.contention_factor(zone);
  const double translation = tlb_.translation_cycles_per_access(mix, locality) *
                             (1.0 + 0.6 * (bw_factor - 1.0));
  const double mem_stall = 1.8 * (bw_factor - 1.0); // extra cycles per access when saturated
  const double on_core = static_cast<double>(cpu_work) +
                         static_cast<double>(mem_accesses) * (translation + mem_stall);
  const double dilation = scheduler_.dilation(proc.core());
  double wall = on_core * dilation;
  // Scheduler noise: per-burst jitter, heavier when oversubscribed.
  const double over = scheduler_.oversubscription();
  const double cv = 0.01 + 0.03 * (over - 1.0);
  wall = rng_.lognormal_from_moments(wall, cv * wall);
  return static_cast<Cycles>(wall);
}

std::optional<Addr> Node::kernel_alloc(ZoneId zone, unsigned order) {
  const mm::AllocOutcome out = memory_->alloc_pages(zone, order, /*allow_reclaim=*/true);
  if (out.entered_reclaim) {
    maybe_swap(zone);
  }
  if (!out.ok) {
    return std::nullopt;
  }
  return out.addr;
}

void Node::remember_anon_page(Process& proc, Addr page) {
  constexpr std::size_t kLruCap = 1'000'000;
  if (anon_lru_.size() >= kLruCap) {
    return; // newest pages are the hottest; forgetting them is LRU-safe
  }
  anon_lru_.emplace_back(&proc, page);
}

void Node::maybe_swap(ZoneId zone) {
  // Swap only once the cache has nothing meaningful left to give — anon
  // eviction is the kernel's last resort.
  const std::uint64_t floor = memory_->cache(zone).free_floor();
  if (!memory_->below_low_watermark(zone) ||
      memory_->cache(zone).cached_bytes() > floor + floor / 2) {
    return;
  }
  unsigned evicted = 0;
  while (evicted < 128 && !anon_lru_.empty()) {
    auto [proc, va] = anon_lru_.front();
    anon_lru_.pop_front();
    if (!proc->alive()) {
      continue;
    }
    mm::AddressSpace& as = proc->address_space();
    const mm::Vma* vma = as.vmas().find(va);
    if (vma == nullptr || vma->locked) {
      continue; // stale entry (munmapped) or pinned (mlock works!)
    }
    const auto t = as.page_table().walk(va);
    if (!t.has_value() || t->size != PageSize::k4K) {
      continue; // already gone or merged into a huge page
    }
    const Addr frame = align_down(t->phys, kSmallPageSize);
    if (phys_.is_offline(frame)) {
      continue; // HPMMAP memory: invisible to reclaim
    }
    as.page_table().unmap(va, PageSize::k4K);
    memory_->free_pages(phys_.zone_of(frame), frame, 0);
    as.mark_swapped(va);
    ++swapped_out_total_;
    ++evicted;
  }
  if (evicted > 0 && trace::on(trace::Category::kBuddy)) {
    trace::instant(trace::Category::kBuddy, "mm.swap_out", 0, -1,
                   {trace::Arg::u64("zone", zone), trace::Arg::u64("pages", evicted)});
  }
}

void Node::kernel_free(ZoneId zone, Addr addr, unsigned order) {
  memory_->free_pages(zone, addr, order);
}

} // namespace hpmmap::os
