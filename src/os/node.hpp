// A simulated compute node: hardware model + Linux memory management +
// (optionally) the HPMMAP module, with processes, a scheduler, kswapd
// and khugepaged running on the shared event engine.
//
// This is the public composition surface the workloads, examples and
// benchmarks drive. The syscall entry points mirror Figure 6: every
// address-space call first probes the HPMMAP PID hash (when the module
// is loaded) and is served either by the module or by the default Linux
// implementation.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/module.hpp"
#include "hw/bandwidth.hpp"
#include "hw/machine.hpp"
#include "hw/phys_mem.hpp"
#include "hw/tlb.hpp"
#include "linux_mm/cost_model.hpp"
#include "linux_mm/fault.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/memory_system.hpp"
#include "linux_mm/smp.hpp"
#include "linux_mm/thp.hpp"
#include "os/process.hpp"
#include "os/scheduler.hpp"
#include "sim/engine.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::os {

struct NodeConfig {
  hw::MachineSpec machine = hw::dell_r415();
  mm::CostModel costs{};
  /// System-wide THP (§IV: on for the THP tests, off for HugeTLBfs).
  bool thp_enabled = true;
  /// HugeTLBfs boot reservation per zone (§IV: 6 GB per zone = 12 of 16 GB).
  std::uint64_t hugetlb_pool_per_zone = 0;
  /// Fraction of a HugeTLBfs process's data mmaps that libhugetlbfs
  /// fails to back with pool pages (alignment, morecore gaps, mappings
  /// it does not interpose) and that land as ordinary 4K anon in the
  /// non-pool memory — the §II-C limitation that bites at 8 cores.
  double hugetlbfs_small_spill = 0.18;
  /// Load the HPMMAP module with this configuration.
  std::optional<core::ModuleConfig> hpmmap{};
  /// Run an SmpDomain: concurrent faulting cores *execute* mmap_sem,
  /// PT-shard and zone-lock acquisitions on the virtual clock, with
  /// per-CPU page-frame caches and batched TLB shootdowns (DESIGN.md
  /// §14). Absent = the single-core fault path, cycle-identical to
  /// every pre-SMP run.
  std::optional<mm::SmpConfig> smp{};
  /// Age the memory state at boot: fill the page cache, pin some slab
  /// memory, and fragment the freelists — the steady state of a machine
  /// that has been up for a while, which is what every real measurement
  /// (including the paper's) runs on. Pristine zones make THP look far
  /// better than it ever is in practice.
  bool aged_boot = true;
  double boot_cache_fraction = 0.45; // of online memory, reclaimable
  double boot_slab_fraction = 0.06;  // of online memory, unmovable
  std::uint64_t seed = 42;
  std::string name = "node0";
};

class Node {
 public:
  Node(sim::Engine& engine, NodeConfig config);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // --- process lifecycle ---------------------------------------------------
  /// `core` < 0 = unpinned; `duty` = CPU duty cycle for the scheduler.
  Process& spawn(std::string proc_name, MmPolicy policy, std::int32_t core, double duty,
                 mm::AddressSpace::ZonePolicy zone_policy, ZoneId home_zone);
  void exit_process(Process& proc);

  // --- syscalls (Figure 6 dispatch) ------------------------------------------
  struct SysOut {
    Errno err = Errno::kOk;
    Addr addr = 0;
    Cycles cost = 0;
  };
  /// What kind of segment the caller is creating; decides hugetlb
  /// eligibility (stacks never, §II-C) and THP eligibility.
  enum class Segment : std::uint8_t { kHeapData, kStack, kMisc };

  /// `core` >= 0 pins the call to that CPU for SMP lock accounting
  /// (threaded apps share one Process across cores); -1 = proc.core().
  SysOut sys_mmap(Process& proc, std::uint64_t len, Prot prot, Segment seg,
                  std::int32_t core = -1);
  SysOut sys_munmap(Process& proc, Addr addr, std::uint64_t len, std::int32_t core = -1);
  SysOut sys_brk(Process& proc, Addr new_break);
  SysOut sys_mprotect(Process& proc, Addr addr, std::uint64_t len, Prot prot);
  SysOut sys_mlock(Process& proc, Addr addr, std::uint64_t len);

  // --- memory access -----------------------------------------------------
  /// First-touch every page of [range); faults are charged, recorded in
  /// the process stats/trace, and already-mapped spans are skipped at
  /// leaf granularity. Returns consumed cycles. Callers slice large
  /// ranges so daemons interleave. `core` >= 0 overrides proc.core()
  /// for threaded apps faulting one address space from many CPUs.
  Cycles touch_range(Process& proc, Range range, std::int32_t core = -1);

  /// Wall cycles for a compute burst: `cpu_work` on-core cycles plus
  /// `mem_accesses` memory references with the given locality, dilated
  /// by scheduler contention, TLB translation costs for the process's
  /// current mapping mix, and bandwidth contention.
  Cycles compute_burst(Process& proc, Cycles cpu_work, std::uint64_t mem_accesses,
                       double locality);

  // --- kernel-space allocation (the kernel-build churn model) ---------------
  [[nodiscard]] std::optional<Addr> kernel_alloc(ZoneId zone, unsigned order);
  void kernel_free(ZoneId zone, Addr addr, unsigned order);

  // --- component access ------------------------------------------------------
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const hw::MachineSpec& spec() const noexcept { return config_.machine; }
  [[nodiscard]] mm::MemorySystem& memory() noexcept { return *memory_; }
  [[nodiscard]] hw::PhysicalMemory& phys() noexcept { return phys_; }
  [[nodiscard]] hw::BandwidthModel& bandwidth() noexcept { return bw_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] mm::ThpService* thp() noexcept { return thp_.get(); }
  [[nodiscard]] mm::HugetlbPool* hugetlb() noexcept { return hugetlb_.get(); }
  [[nodiscard]] core::HpmmapModule* hpmmap_module() noexcept { return module_.get(); }
  [[nodiscard]] mm::SmpDomain* smp() noexcept { return smp_.get(); }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const NodeConfig& config() const noexcept { return config_; }
  /// Visit every process ever spawned (dead ones included; check
  /// `alive()`). Deterministic spawn order; the auditor's sweep.
  template <typename Fn>
  void for_each_process(Fn&& fn) const {
    for (const auto& p : processes_) {
      fn(*p);
    }
  }
  [[nodiscard]] std::size_t process_count() const noexcept { return processes_.size(); }
  [[nodiscard]] double seconds(Cycles c) const noexcept { return config_.machine.seconds(c); }
  /// Cumulative anonymous 4K pages evicted to swap (vmstat's pswpout).
  [[nodiscard]] std::uint64_t swapped_out_total() const noexcept { return swapped_out_total_; }

 private:
  friend struct hpmmap::snapshot::Access;

  void age_system();
  /// One kswapd wakeup: rebalance every zone, then re-arm the timer.
  /// Extracted from the schedule_kswapd() lambda so snapshot restore can
  /// re-arm the identical callback.
  void kswapd_tick();
  /// Under sustained pressure with the page cache spent, reclaim evicts
  /// anonymous 4K pages to swap (kswapd's anon LRU). Victims refault
  /// with a disk read. HPMMAP-backed memory lives in offlined frames
  /// reclaim never sees — the isolation claim of §III-A.
  void maybe_swap(ZoneId zone);
  void remember_anon_page(Process& proc, Addr page);
  SysOut linux_mmap(Process& proc, std::uint64_t len, Prot prot, Segment seg,
                    std::int32_t core = -1);
  SysOut linux_brk(Process& proc, Addr new_break);
  /// Unmap and free every backed page in [range) of a Linux-managed
  /// process; returns cycles. Coalesces physically contiguous 4K frames
  /// into higher-order frees.
  Cycles release_linux_range(Process& proc, Range range, std::int32_t core = -1);
  void schedule_kswapd();
  [[nodiscard]] bool is_hpmmap_call(const Process& proc, Cycles& hash_cost) const;

  sim::Engine& engine_;
  NodeConfig config_;
  hw::PhysicalMemory phys_;
  hw::BandwidthModel bw_;
  hw::TlbModel tlb_;
  // Module load offlines memory *before* the Linux memory system builds
  // its zone freelists (declaration order is load-bearing).
  std::unique_ptr<core::HpmmapModule> module_;
  std::unique_ptr<mm::MemorySystem> memory_;
  std::unique_ptr<mm::ThpService> thp_;
  std::unique_ptr<mm::HugetlbPool> hugetlb_;
  std::unique_ptr<mm::FaultHandler> fault_handler_;
  std::unique_ptr<mm::SmpDomain> smp_;
  Scheduler scheduler_;
  Rng rng_;
  std::vector<std::unique_ptr<Process>> processes_;
  Pid next_pid_ = 1000;
  sim::EventId kswapd_event_{};
  // Sampled anon LRU for the swap model: oldest remembered pages are the
  // eviction victims. Bounded; self-cleans as entries go stale.
  std::deque<std::pair<Process*, Addr>> anon_lru_;
  std::uint64_t swapped_out_total_ = 0;
  // Failed-fault warnings are per-fault under memory exhaustion; budget
  // them so pathological configs don't flood benchmark output.
  LogLimiter fault_warn_limiter_{10};
};

} // namespace hpmmap::os
