#include "hw/tlb.hpp"

#include <algorithm>

namespace hpmmap::hw {

double MappingMix::large_fraction() const noexcept {
  const std::uint64_t t = total();
  if (t == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes_2m + bytes_1g) / static_cast<double>(t);
}

double TlbModel::class_miss_rate(std::uint64_t ws_bytes, std::uint64_t reach_bytes,
                                 double locality) const noexcept {
  if (ws_bytes == 0) {
    return 0.0;
  }
  if (reach_bytes >= ws_bytes) {
    return 0.0;
  }
  // Accesses split into a hot fraction (covered by the TLB once warm) and
  // a cold fraction that sweeps the whole working set; cold accesses miss
  // in proportion to the uncovered share of the set.
  const double covered = static_cast<double>(reach_bytes) / static_cast<double>(ws_bytes);
  const double cold = 1.0 - std::clamp(locality, 0.0, 1.0);
  return cold * (1.0 - covered);
}

double TlbModel::miss_rate(const MappingMix& mix, double locality) const noexcept {
  const std::uint64_t total = mix.total();
  if (total == 0) {
    return 0.0;
  }
  // Second-level TLB capacity is shared between 4K and 2M translations in
  // proportion to each class's share of the working set.
  const double f4k = static_cast<double>(mix.bytes_4k) / static_cast<double>(total);
  const double f2m = static_cast<double>(mix.bytes_2m) / static_cast<double>(total);
  const double f1g = static_cast<double>(mix.bytes_1g) / static_cast<double>(total);

  const auto l2_share = [&](double f) {
    return static_cast<std::uint64_t>(f * static_cast<double>(spec_.l2_entries));
  };

  const std::uint64_t reach_4k =
      (spec_.l1_entries_4k + l2_share(f4k)) * kSmallPageSize;
  const std::uint64_t reach_2m =
      (spec_.l1_entries_2m + l2_share(f2m)) * kLargePageSize;
  const std::uint64_t reach_1g =
      (spec_.l1_entries_1g + (spec_.l2_holds_1g ? l2_share(f1g) : 0)) * kHugePageSize;

  return f4k * class_miss_rate(mix.bytes_4k, reach_4k, locality) +
         f2m * class_miss_rate(mix.bytes_2m, reach_2m, locality) +
         f1g * class_miss_rate(mix.bytes_1g, reach_1g, locality);
}

double TlbModel::translation_cycles_per_access(const MappingMix& mix,
                                               double locality) const noexcept {
  const std::uint64_t total = mix.total();
  if (total == 0) {
    return 0.0;
  }
  const double f4k = static_cast<double>(mix.bytes_4k) / static_cast<double>(total);
  const double f2m = static_cast<double>(mix.bytes_2m) / static_cast<double>(total);
  const double f1g = static_cast<double>(mix.bytes_1g) / static_cast<double>(total);

  const auto l2_share = [&](double f) {
    return static_cast<std::uint64_t>(f * static_cast<double>(spec_.l2_entries));
  };
  const std::uint64_t reach_4k = (spec_.l1_entries_4k + l2_share(f4k)) * kSmallPageSize;
  const std::uint64_t reach_2m = (spec_.l1_entries_2m + l2_share(f2m)) * kLargePageSize;
  const std::uint64_t reach_1g =
      (spec_.l1_entries_1g + (spec_.l2_holds_1g ? l2_share(f1g) : 0)) * kHugePageSize;

  const double cost_4k =
      class_miss_rate(mix.bytes_4k, reach_4k, locality) * static_cast<double>(spec_.walk_cycles_4k);
  const double cost_2m =
      class_miss_rate(mix.bytes_2m, reach_2m, locality) * static_cast<double>(spec_.walk_cycles_2m);
  const double cost_1g =
      class_miss_rate(mix.bytes_1g, reach_1g, locality) * static_cast<double>(spec_.walk_cycles_1g);

  return f4k * cost_4k + f2m * cost_2m + f1g * cost_1g;
}

} // namespace hpmmap::hw
