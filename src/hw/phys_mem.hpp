// Physical memory topology: NUMA zones carved into hot-removable
// 128 MiB sections.
//
// This is the substrate HPMMAP's offlining capability operates on
// (§III-A): a section owned by kOffline is invisible to the Linux buddy
// allocator but remains physically addressable, so a separate manager can
// claim it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"

namespace hpmmap::hw {

enum class SectionOwner : std::uint8_t {
  kLinux,   // managed by the commodity buddy allocator
  kOffline, // hot-removed; available to an external manager (HPMMAP)
};

struct Section {
  Range range;       // physical byte range, kMemorySectionSize-aligned
  ZoneId zone = 0;
  SectionOwner owner = SectionOwner::kLinux;
};

/// NUMA zone: contiguous physical range plus accounting of how much of it
/// is currently online (Linux-visible).
struct Zone {
  ZoneId id = 0;
  Range range;
  std::uint64_t online_bytes = 0;
};

class PhysicalMemory {
 public:
  /// Lay out `ram_bytes` evenly across `zones` NUMA zones starting at
  /// physical address 0; every zone is a whole number of sections.
  PhysicalMemory(std::uint64_t ram_bytes, std::uint32_t zones);

  [[nodiscard]] const std::vector<Zone>& zones() const noexcept { return zones_; }
  [[nodiscard]] const std::vector<Section>& sections() const noexcept { return sections_; }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  /// Hot-remove `bytes` from `zone` (rounded up to whole sections, taken
  /// from the top of the zone like Linux's movable-zone removal).
  /// Returns the removed ranges, or empty if the zone lacks that much
  /// online memory.
  [[nodiscard]] std::vector<Range> offline_bytes(ZoneId zone, std::uint64_t bytes);

  /// Return previously offlined ranges to Linux ownership.
  void online_ranges(const std::vector<Range>& ranges);

  [[nodiscard]] std::uint64_t online_bytes(ZoneId zone) const;
  [[nodiscard]] std::uint64_t offlined_bytes(ZoneId zone) const;

  /// Zone that physically contains address `a`.
  [[nodiscard]] ZoneId zone_of(Addr a) const;

  /// True if `a` lies in an offlined section — used to assert the
  /// isolation invariant (Linux never touches offlined frames).
  [[nodiscard]] bool is_offline(Addr a) const;

  /// True if `a` is a real physical address (zones start at 0 and are
  /// contiguous). The auditor uses this to report — not assert on —
  /// frames pointing off the end of RAM.
  [[nodiscard]] bool valid(Addr a) const noexcept { return a < total_bytes_; }

 private:
  [[nodiscard]] Section& section_of(Addr a);
  [[nodiscard]] const Section& section_of(Addr a) const;

  std::vector<Zone> zones_;
  std::vector<Section> sections_;
  std::uint64_t total_bytes_ = 0;
};

} // namespace hpmmap::hw
