// Machine descriptions for the two testbeds in the paper's evaluation
// (§IV): a Dell R415 for the single-node study and the nodes of an 8-node
// Sandia cluster for the scaling study.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "common/units.hpp"

namespace hpmmap::hw {

/// TLB geometry. Reach = entries x page size; the model in tlb.hpp turns
/// geometry + working-set size into a per-access miss probability.
struct TlbSpec {
  std::uint32_t l1_entries_4k = 64;
  std::uint32_t l1_entries_2m = 32;
  std::uint32_t l1_entries_1g = 4;
  std::uint32_t l2_entries = 512;    // unified second-level TLB (4K/2M)
  bool l2_holds_1g = false;

  /// Page-walk latencies in cycles when the walk misses all paging
  /// caches. At multi-GB working sets the page-table pages themselves
  /// fall out of the data caches, so each level costs roughly a DRAM
  /// access; shorter tables -> fewer levels -> cheaper walks (§II:
  /// "shorter page table walks").
  Cycles walk_cycles_4k = 160;
  Cycles walk_cycles_2m = 90;
  Cycles walk_cycles_1g = 45;
};

struct MachineSpec {
  std::string model;
  std::uint32_t sockets = 2;
  std::uint32_t cores_per_socket = 6;
  std::uint32_t numa_zones = 2;
  std::uint64_t ram_bytes = 16 * GiB;
  double clock_hz = 2.3e9;

  /// Peak DRAM streaming rate per NUMA zone, in bytes per core-cycle.
  /// Used by the bandwidth contention model, not for cycle-exact DRAM.
  double zone_bandwidth_bytes_per_cycle = 5.6;

  TlbSpec tlb;

  [[nodiscard]] std::uint32_t total_cores() const noexcept {
    return sockets * cores_per_socket;
  }
  [[nodiscard]] std::uint64_t ram_per_zone() const noexcept {
    return ram_bytes / numa_zones;
  }
  /// Convert simulated cycles to seconds at this machine's clock.
  [[nodiscard]] double seconds(Cycles c) const noexcept {
    return static_cast<double>(c) / clock_hz;
  }
  [[nodiscard]] Cycles cycles(double secs) const noexcept {
    return static_cast<Cycles>(secs * clock_hz);
  }
};

/// Single-node testbed: Dell R415, 2x 6-core Opteron 4174 @ 2.3 GHz,
/// 16 GB RAM, two NUMA zones, interleaving disabled (§IV).
[[nodiscard]] MachineSpec dell_r415();

/// Scaling testbed node: 2x 4-core Xeon X5570 @ 2.93 GHz, 24 GB RAM,
/// two NUMA zones, 1 Gbit NIC (§IV).
[[nodiscard]] MachineSpec sandia_xeon_node();

} // namespace hpmmap::hw
