#include "hw/machine.hpp"

namespace hpmmap::hw {

MachineSpec dell_r415() {
  MachineSpec spec;
  spec.model = "Dell R415 (2x Opteron 4174, 16GB)";
  spec.sockets = 2;
  spec.cores_per_socket = 6;
  spec.numa_zones = 2;
  spec.ram_bytes = 16 * GiB;
  spec.clock_hz = 2.3e9;
  spec.zone_bandwidth_bytes_per_cycle = 5.6; // ~12.8 GB/s DDR3-1333 per zone
  // K10 family: 48-entry fully-assoc L1 DTLB (4K+2M), 512-entry L2 (4K),
  // 128-entry L2 for 2M pages; modelled with the unified-L2 approximation.
  spec.tlb.l1_entries_4k = 48;
  spec.tlb.l1_entries_2m = 48;
  spec.tlb.l1_entries_1g = 0; // no 1G data TLB on this part
  spec.tlb.l2_entries = 512;
  return spec;
}

MachineSpec sandia_xeon_node() {
  MachineSpec spec;
  spec.model = "Sandia cluster node (2x Xeon X5570, 24GB, 1GbE)";
  spec.sockets = 2;
  spec.cores_per_socket = 4;
  spec.numa_zones = 2;
  spec.ram_bytes = 24 * GiB;
  spec.clock_hz = 2.93e9;
  spec.zone_bandwidth_bytes_per_cycle = 8.7; // ~25.6 GB/s QPI-attached DDR3
  // Nehalem: 64-entry L1 DTLB 4K, 32-entry 2M, 512-entry unified L2.
  spec.tlb.l1_entries_4k = 64;
  spec.tlb.l1_entries_2m = 32;
  spec.tlb.l1_entries_1g = 0;
  spec.tlb.l2_entries = 512;
  return spec;
}

} // namespace hpmmap::hw
