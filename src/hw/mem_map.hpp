// Contiguous frame-metadata array over a physical range — the moral
// equivalent of Linux's `struct page` mem_map.
//
// Every BuddyAllocator owns one MemMap covering its range; the mm hot
// path (buddy freelists, page-cache LRU, hugetlb pool stacks) threads
// its bookkeeping through it instead of heap-allocating tree/list nodes
// per block. Two stores back the abstraction:
//
//   meta   one byte per 4 KiB frame, dense. Only the *head* frame of a
//          tracked block is marked (state in the low 3 bits, block order
//          in the high 5); blocks are naturally aligned, so the block
//          containing an address is found by aligning down at each order
//          and probing the head — O(max_order) with no search structure.
//          At 1 byte/frame a 12 GiB zone costs 3 MiB, against hundreds
//          of megabytes for a struct-per-frame layout.
//
//   links  a sparse open-addressing table from frame index to
//          {next, prev} frame indices, for the intrusive lists (LRU
//          order, pool stacks) that only ever cover a small fraction of
//          frames. Linear probing, power-of-two capacity, backward-shift
//          deletion; indices are 32-bit (a range is < 2^32 frames).
//
// The MemMap records ownership; it enforces nothing. Owners keep their
// own counts and the invariant auditor cross-checks the two views.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::hw {

/// Who owns the block headed by a frame. kUntracked covers both "frame
/// allocated to a process mapping" and "interior frame of a block" —
/// page tables are the source of truth for mappings.
enum class FrameState : std::uint8_t {
  kUntracked = 0,
  kBuddyFree = 1,
  kCacheClean = 2,
  kCacheDirty = 3,
  kHugetlbPool = 4,
  kPcpCache = 5, // order-0 frame parked on a per-CPU page-frame cache
};

/// Bitmask selecting a FrameState for block_containing() probes.
[[nodiscard]] constexpr std::uint8_t state_mask(FrameState s) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(s));
}
inline constexpr std::uint8_t kCacheStates =
    state_mask(FrameState::kCacheClean) | state_mask(FrameState::kCacheDirty);

class MemMap {
 public:
  /// Null frame index: list terminator / absent link.
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Link {
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
  };

  explicit MemMap(Range range) : range_(range) {
    HPMMAP_ASSERT(!range_.empty(), "mem_map range must be non-empty");
    HPMMAP_ASSERT(is_aligned(range_.begin, kSmallPageSize) && is_aligned(range_.end, kSmallPageSize),
                  "mem_map range must be page-aligned");
    HPMMAP_ASSERT(range_.size() >> 12 < kNil, "range too large for 32-bit frame indices");
    meta_.assign(static_cast<std::size_t>(range_.size() >> 12), 0);
  }

  [[nodiscard]] Range range() const noexcept { return range_; }
  [[nodiscard]] std::uint64_t frame_count() const noexcept { return meta_.size(); }
  [[nodiscard]] bool contains(Addr addr) const noexcept { return range_.contains(addr); }

  [[nodiscard]] std::uint32_t index_of(Addr addr) const noexcept {
    HPMMAP_ASSERT(range_.contains(addr), "address outside mem_map");
    return static_cast<std::uint32_t>((addr - range_.begin) >> 12);
  }
  [[nodiscard]] Addr addr_of(std::uint32_t idx) const noexcept {
    HPMMAP_ASSERT(idx < meta_.size(), "frame index out of range");
    return range_.begin + (static_cast<Addr>(idx) << 12);
  }

  [[nodiscard]] FrameState state(std::uint32_t idx) const noexcept {
    HPMMAP_ASSERT(idx < meta_.size(), "frame index out of range");
    return static_cast<FrameState>(meta_[idx] & 0x7u);
  }
  [[nodiscard]] unsigned order(std::uint32_t idx) const noexcept {
    HPMMAP_ASSERT(idx < meta_.size(), "frame index out of range");
    return meta_[idx] >> 3;
  }

  /// Mark `idx` as the head frame of an `order` block owned by `st`.
  void set_head(std::uint32_t idx, FrameState st, unsigned order) noexcept {
    HPMMAP_ASSERT(idx < meta_.size(), "frame index out of range");
    HPMMAP_ASSERT(order < 32, "order does not fit the meta byte");
    meta_[idx] = static_cast<std::uint8_t>(static_cast<unsigned>(st) | (order << 3));
  }
  void clear_head(std::uint32_t idx) noexcept {
    HPMMAP_ASSERT(idx < meta_.size(), "frame index out of range");
    meta_[idx] = 0;
  }

  /// The tracked block containing `addr` whose state is selected by
  /// `states` (OR of state_mask), as (block base, order). O(max_order)
  /// align-down probes; blocks are naturally aligned so the head of the
  /// containing block at order o is the align-down of `addr` at o.
  [[nodiscard]] std::optional<std::pair<Addr, unsigned>>
  block_containing(Addr addr, std::uint8_t states, unsigned max_order) const noexcept {
    if (!range_.contains(addr)) {
      return std::nullopt;
    }
    const std::uint64_t off = addr - range_.begin;
    for (unsigned o = 0; o <= max_order; ++o) {
      const std::uint64_t base = align_down(off, kSmallPageSize << o);
      const std::uint8_t m = meta_[base >> 12];
      if ((states & static_cast<std::uint8_t>(1u << (m & 0x7u))) != 0 && (m >> 3) == o) {
        return std::make_pair(range_.begin + base, o);
      }
    }
    return std::nullopt;
  }

  // --- intrusive links -------------------------------------------------

  [[nodiscard]] bool has_link(std::uint32_t idx) const noexcept {
    return find_slot(idx) != kNotFound;
  }
  [[nodiscard]] Link link(std::uint32_t idx) const noexcept {
    const std::size_t slot = find_slot(idx);
    HPMMAP_ASSERT(slot != kNotFound, "frame has no link entry");
    return slots_[slot].link;
  }
  /// Insert or update the link entry for `idx`.
  void set_link(std::uint32_t idx, Link l) {
    if (slots_.empty() || (link_count_ + 1) * 10 > slots_.size() * 7) {
      rehash(slots_.empty() ? 64 : slots_.size() * 2);
    }
    std::size_t pos = home(idx);
    while (slots_[pos].key != kNil && slots_[pos].key != idx) {
      pos = (pos + 1) & (slots_.size() - 1);
    }
    if (slots_[pos].key == kNil) {
      slots_[pos].key = idx;
      ++link_count_;
    }
    slots_[pos].link = l;
  }
  void set_next(std::uint32_t idx, std::uint32_t next) {
    const std::size_t slot = find_slot(idx);
    HPMMAP_ASSERT(slot != kNotFound, "frame has no link entry");
    slots_[slot].link.next = next;
  }
  void set_prev(std::uint32_t idx, std::uint32_t prev) {
    const std::size_t slot = find_slot(idx);
    HPMMAP_ASSERT(slot != kNotFound, "frame has no link entry");
    slots_[slot].link.prev = prev;
  }
  void erase_link(std::uint32_t idx) {
    std::size_t pos = find_slot(idx);
    HPMMAP_ASSERT(pos != kNotFound, "erase of a frame with no link entry");
    // Backward-shift deletion keeps every probe chain gap-free.
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = pos;
    std::size_t probe = pos;
    for (;;) {
      probe = (probe + 1) & mask;
      if (slots_[probe].key == kNil) {
        break;
      }
      const std::size_t h = home(slots_[probe].key);
      // Move the entry back iff its home does not lie in (hole, probe].
      const bool keep = hole < probe ? (h > hole && h <= probe) : (h > hole || h <= probe);
      if (!keep) {
        slots_[hole] = slots_[probe];
        hole = probe;
      }
    }
    slots_[hole].key = kNil;
    slots_[hole].link = Link{};
    --link_count_;
  }
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }

  /// Visit every tracked block head as (addr, state, order), ascending
  /// address. O(frames) with word-wise skipping of untracked runs —
  /// auditor sweeps, not the hot path.
  template <typename Fn>
  void for_each_head(Fn&& fn) const {
    std::size_t i = 0;
    const std::size_t n = meta_.size();
    while (i < n) {
      if (i + 8 <= n) {
        std::uint64_t w;
        std::memcpy(&w, meta_.data() + i, 8);
        if (w == 0) {
          i += 8;
          continue;
        }
      }
      if (meta_[i] != 0) {
        fn(addr_of(static_cast<std::uint32_t>(i)), static_cast<FrameState>(meta_[i] & 0x7u),
           static_cast<unsigned>(meta_[i] >> 3));
      }
      ++i;
    }
  }

 private:
  friend struct hpmmap::snapshot::Access;

  struct Slot {
    std::uint32_t key = kNil;
    Link link;
  };
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t home(std::uint32_t key) const noexcept {
    return (key * 2654435761u) & (slots_.size() - 1);
  }
  [[nodiscard]] std::size_t find_slot(std::uint32_t key) const noexcept {
    if (slots_.empty()) {
      return kNotFound;
    }
    std::size_t pos = home(key);
    while (slots_[pos].key != kNil) {
      if (slots_[pos].key == key) {
        return pos;
      }
      pos = (pos + 1) & (slots_.size() - 1);
    }
    return kNotFound;
  }
  void rehash(std::size_t new_cap);

  Range range_;
  std::vector<std::uint8_t> meta_;
  std::vector<Slot> slots_;
  std::size_t link_count_ = 0;
};

} // namespace hpmmap::hw
