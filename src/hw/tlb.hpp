// Analytic TLB model.
//
// The paper's performance argument for large pages is TLB reach and page
// walk length (§II). Simulating per-access TLB hits is out of the
// question at the cycle volumes involved, so the model maps
// (working-set size, page-size mix, access locality) to an expected
// per-access address-translation cost. This is the standard
// reach-coverage approximation used in TLB literature.
#pragma once

#include "common/types.hpp"
#include "hw/machine.hpp"

namespace hpmmap::hw {

/// How a process's resident working set is mapped, as byte totals per
/// page size. Produced by the memory managers (address-space accounting),
/// consumed by the compute-time model.
struct MappingMix {
  std::uint64_t bytes_4k = 0;
  std::uint64_t bytes_2m = 0;
  std::uint64_t bytes_1g = 0;

  [[nodiscard]] std::uint64_t total() const noexcept { return bytes_4k + bytes_2m + bytes_1g; }
  /// Fraction of the working set covered by >=2M mappings.
  [[nodiscard]] double large_fraction() const noexcept;
};

class TlbModel {
 public:
  explicit TlbModel(const TlbSpec& spec) noexcept : spec_(spec) {}

  /// Expected extra cycles per memory access spent on address
  /// translation, for an access stream with the given locality over a
  /// working set mapped as `mix`.
  ///
  /// `locality` in (0, 1]: fraction of accesses that fall in a hot subset
  /// the size of the TLB reach regardless of working-set size (stencil
  /// codes ~0.9+, random-access ~0.5).
  [[nodiscard]] double translation_cycles_per_access(const MappingMix& mix,
                                                     double locality) const noexcept;

  /// Expected miss probability alone (used by tests and ablations).
  [[nodiscard]] double miss_rate(const MappingMix& mix, double locality) const noexcept;

 private:
  [[nodiscard]] double class_miss_rate(std::uint64_t ws_bytes, std::uint64_t reach_bytes,
                                       double locality) const noexcept;
  TlbSpec spec_;
};

} // namespace hpmmap::hw
