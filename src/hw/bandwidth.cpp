#include "hw/bandwidth.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hpmmap::hw {

BandwidthModel::BandwidthModel(std::uint32_t zones, double zone_capacity_bytes_per_cycle)
    : zone_demand_(zones, 0.0), capacity_(zone_capacity_bytes_per_cycle) {
  HPMMAP_ASSERT(zones > 0, "need at least one zone");
  HPMMAP_ASSERT(capacity_ > 0.0, "zone bandwidth must be positive");
}

BandwidthModel::Consumer BandwidthModel::register_consumer() { return Consumer{next_id_++}; }

void BandwidthModel::set_demand(Consumer c, ZoneId zone, double bytes_per_cycle) {
  HPMMAP_ASSERT(zone < zone_demand_.size(), "zone out of range");
  HPMMAP_ASSERT(bytes_per_cycle >= 0.0, "demand cannot be negative");
  for (Entry& e : entries_) {
    if (e.consumer == c.id && e.zone == zone) {
      zone_demand_[zone] += bytes_per_cycle - e.demand;
      e.demand = bytes_per_cycle;
      return;
    }
  }
  entries_.push_back(Entry{c.id, zone, bytes_per_cycle});
  zone_demand_[zone] += bytes_per_cycle;
}

void BandwidthModel::clear_demand(Consumer c) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->consumer == c.id) {
      zone_demand_[it->zone] -= it->demand;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

double BandwidthModel::contention_factor(ZoneId zone) const noexcept {
  if (zone >= zone_demand_.size()) {
    return 1.0;
  }
  const double demand = zone_demand_[zone];
  return demand <= capacity_ ? 1.0 : demand / capacity_;
}

double BandwidthModel::effective_rate(ZoneId zone, double bytes_per_cycle) const noexcept {
  if (zone >= zone_demand_.size()) {
    return bytes_per_cycle;
  }
  const double others = zone_demand_[zone];
  const double total = others + bytes_per_cycle;
  if (total <= capacity_) {
    return bytes_per_cycle;
  }
  // Proportional sharing of the saturated channel.
  return capacity_ * bytes_per_cycle / total;
}

double BandwidthModel::total_demand(ZoneId zone) const noexcept {
  return zone < zone_demand_.size() ? zone_demand_[zone] : 0.0;
}

} // namespace hpmmap::hw
