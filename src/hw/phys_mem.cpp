#include "hw/phys_mem.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hpmmap::hw {

PhysicalMemory::PhysicalMemory(std::uint64_t ram_bytes, std::uint32_t zone_count) {
  HPMMAP_ASSERT(zone_count > 0, "at least one NUMA zone required");
  HPMMAP_ASSERT(ram_bytes % (kMemorySectionSize * zone_count) == 0,
                "RAM must divide evenly into 128MiB sections per zone");
  total_bytes_ = ram_bytes;
  const std::uint64_t per_zone = ram_bytes / zone_count;
  Addr cursor = 0;
  for (ZoneId z = 0; z < zone_count; ++z) {
    Zone zone;
    zone.id = z;
    zone.range = Range{cursor, cursor + per_zone};
    zone.online_bytes = per_zone;
    zones_.push_back(zone);
    for (Addr s = cursor; s < cursor + per_zone; s += kMemorySectionSize) {
      sections_.push_back(Section{Range{s, s + kMemorySectionSize}, z, SectionOwner::kLinux});
    }
    cursor += per_zone;
  }
}

std::vector<Range> PhysicalMemory::offline_bytes(ZoneId zone, std::uint64_t bytes) {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  const std::uint64_t want = align_up(bytes, kMemorySectionSize);
  if (want > zones_[zone].online_bytes) {
    return {};
  }
  // Take sections from the top of the zone downward, mirroring how the
  // movable zone is drained on real systems. Coalesce adjacent sections
  // into maximal ranges so the external allocator sees large contiguous
  // blocks ("no less than 128MB, and generally much more", §III-A).
  std::vector<Range> taken;
  std::uint64_t remaining = want;
  for (auto it = sections_.rbegin(); it != sections_.rend() && remaining > 0; ++it) {
    if (it->zone != zone || it->owner != SectionOwner::kLinux) {
      continue;
    }
    it->owner = SectionOwner::kOffline;
    remaining -= kMemorySectionSize;
    if (!taken.empty() && taken.back().begin == it->range.end) {
      taken.back().begin = it->range.begin;
    } else {
      taken.push_back(it->range);
    }
  }
  HPMMAP_ASSERT(remaining == 0, "accounting said enough online memory existed");
  zones_[zone].online_bytes -= want;
  return taken;
}

void PhysicalMemory::online_ranges(const std::vector<Range>& ranges) {
  for (const Range& r : ranges) {
    HPMMAP_ASSERT(is_aligned(r.begin, kMemorySectionSize) && is_aligned(r.end, kMemorySectionSize),
                  "online range must be section-aligned");
    for (Addr s = r.begin; s < r.end; s += kMemorySectionSize) {
      Section& sec = section_of(s);
      HPMMAP_ASSERT(sec.owner == SectionOwner::kOffline, "double-online of a section");
      sec.owner = SectionOwner::kLinux;
      zones_[sec.zone].online_bytes += kMemorySectionSize;
    }
  }
}

std::uint64_t PhysicalMemory::online_bytes(ZoneId zone) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  return zones_[zone].online_bytes;
}

std::uint64_t PhysicalMemory::offlined_bytes(ZoneId zone) const {
  HPMMAP_ASSERT(zone < zones_.size(), "zone out of range");
  return zones_[zone].range.size() - zones_[zone].online_bytes;
}

ZoneId PhysicalMemory::zone_of(Addr a) const { return section_of(a).zone; }

bool PhysicalMemory::is_offline(Addr a) const {
  return section_of(a).owner == SectionOwner::kOffline;
}

Section& PhysicalMemory::section_of(Addr a) {
  HPMMAP_ASSERT(a < total_bytes_, "physical address out of range");
  return sections_[a / kMemorySectionSize];
}

const Section& PhysicalMemory::section_of(Addr a) const {
  HPMMAP_ASSERT(a < total_bytes_, "physical address out of range");
  return sections_[a / kMemorySectionSize];
}

} // namespace hpmmap::hw
