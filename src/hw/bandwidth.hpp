// Memory-bandwidth contention model.
//
// Co-located workloads share DRAM channels whichever memory manager they
// use — HPMMAP partitions *capacity*, not bandwidth — so both the Linux
// and HPMMAP configurations see bandwidth interference. What differs is
// how much additional manager-level traffic (zeroing, copies, reclaim
// writeback) each stack adds. Consumers register a streaming demand in
// bytes/cycle per zone; the model hands back a slowdown factor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::hw {

class BandwidthModel {
 public:
  BandwidthModel(std::uint32_t zones, double zone_capacity_bytes_per_cycle);

  /// Opaque consumer handle; demand can be retargeted as phases change.
  struct Consumer {
    std::uint32_t id = 0;
  };

  [[nodiscard]] Consumer register_consumer();
  void set_demand(Consumer c, ZoneId zone, double bytes_per_cycle);
  void clear_demand(Consumer c);

  /// Multiplicative latency factor (>= 1) a memory-bound operation in
  /// `zone` currently experiences: 1 while total demand fits, rising
  /// linearly with oversubscription.
  [[nodiscard]] double contention_factor(ZoneId zone) const noexcept;

  /// Effective streaming rate for an operation that wants
  /// `bytes_per_cycle` in `zone` (used for page zeroing/copy costs).
  [[nodiscard]] double effective_rate(ZoneId zone, double bytes_per_cycle) const noexcept;

  [[nodiscard]] double total_demand(ZoneId zone) const noexcept;
  [[nodiscard]] double capacity() const noexcept { return capacity_; }

 private:
  friend struct hpmmap::snapshot::Access;

  struct Entry {
    std::uint32_t consumer;
    ZoneId zone;
    double demand;
  };
  std::vector<Entry> entries_;
  std::vector<double> zone_demand_;
  double capacity_;
  std::uint32_t next_id_ = 1;
};

} // namespace hpmmap::hw
