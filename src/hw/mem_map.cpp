#include "hw/mem_map.hpp"

namespace hpmmap::hw {

void MemMap::rehash(std::size_t new_cap) {
  HPMMAP_ASSERT((new_cap & (new_cap - 1)) == 0, "link table capacity must be a power of two");
  if (new_cap <= slots_.size()) {
    return;
  }
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_cap, Slot{});
  for (const Slot& s : old) {
    if (s.key == kNil) {
      continue;
    }
    std::size_t pos = home(s.key);
    while (slots_[pos].key != kNil) {
      pos = (pos + 1) & (new_cap - 1);
    }
    slots_[pos] = s;
  }
}

} // namespace hpmmap::hw
