#include "introspect/procfs.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "core/kitten_allocator.hpp"
#include "core/module.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/thp.hpp"
#include "os/node.hpp"
#include "os/process.hpp"

namespace hpmmap::introspect {

namespace {

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
}

/// meminfo-style "Name:       value kB" row (kernel: "%-15s %8lu kB").
void meminfo_row(std::string& out, const char* label, std::uint64_t bytes_value) {
  appendf(out, "%-15s %8" PRIu64 " kB\n", label, bytes_value / 1024);
}

} // namespace

std::string render_buddyinfo(const std::vector<BuddyinfoZone>& zones) {
  std::string out;
  for (const BuddyinfoZone& z : zones) {
    appendf(out, "Node %u, zone %8s", static_cast<unsigned>(z.zone), z.zone_name);
    for (const std::uint64_t count : z.free_counts) {
      appendf(out, " %6" PRIu64, count);
    }
    out += '\n';
  }
  return out;
}

std::string render_meminfo(const Meminfo& info) {
  std::string out;
  meminfo_row(out, "MemTotal:", info.mem_total);
  meminfo_row(out, "MemFree:", info.mem_free);
  meminfo_row(out, "Cached:", info.cached);
  meminfo_row(out, "AnonPages:", info.anon_pages);
  meminfo_row(out, "AnonHugePages:", info.anon_huge_pages);
  meminfo_row(out, "PageTables:", info.page_tables);
  appendf(out, "HugePages_Total:   %5" PRIu64 "\n", info.hugepages_total);
  appendf(out, "HugePages_Free:    %5" PRIu64 "\n", info.hugepages_free);
  appendf(out, "Hugepagesize:      %5u kB\n", 2048u);
  // Extension rows the real HPMMAP module would add: memory Linux lost
  // to hot-remove and what the Kitten heaps still have free.
  meminfo_row(out, "HpmmapOffline:", info.hpmmap_offline);
  meminfo_row(out, "HpmmapFree:", info.hpmmap_free);
  return out;
}

std::string render_vmstat(const Vmstat& s) {
  std::string out;
  appendf(out, "pgfault %" PRIu64 "\n", s.pgfault);
  appendf(out, "pgalloc_normal %" PRIu64 "\n", s.pgalloc);
  appendf(out, "pgfree %" PRIu64 "\n", s.pgfree);
  appendf(out, "pswpout %" PRIu64 "\n", s.pswpout);
  appendf(out, "allocstall %" PRIu64 "\n", s.allocstall);
  appendf(out, "thp_fault_alloc %" PRIu64 "\n", s.thp_fault_alloc);
  appendf(out, "thp_fault_fallback %" PRIu64 "\n", s.thp_fault_fallback);
  appendf(out, "thp_collapse_alloc %" PRIu64 "\n", s.thp_collapse_alloc);
  appendf(out, "thp_collapse_abort %" PRIu64 "\n", s.thp_collapse_abort);
  appendf(out, "thp_split_page %" PRIu64 "\n", s.thp_split_page);
  appendf(out, "htlb_fault_alloc %" PRIu64 "\n", s.htlb_fault_alloc);
  appendf(out, "htlb_pool_exhausted %" PRIu64 "\n", s.htlb_pool_exhausted);
  return out;
}

std::string render_pagetypeinfo(const std::vector<PagetypeinfoZone>& zones) {
  // Owner states in mem_map meta order; kUntracked heads never exist.
  static constexpr const char* kStateName[] = {
      "untracked", "buddy-free", "cache-clean", "cache-dirty", "hugetlb-pool", "pcp-cache"};
  std::string out;
  std::size_t orders = 0;
  for (const PagetypeinfoZone& z : zones) {
    for (const auto& per_order : z.counts) {
      orders = per_order.size() > orders ? per_order.size() : orders;
    }
  }
  out += "Free pages count per owner state at order    ";
  for (std::size_t o = 0; o < orders; ++o) {
    appendf(out, " %6zu", o);
  }
  out += '\n';
  for (const PagetypeinfoZone& z : zones) {
    for (std::size_t s = 1; s < z.counts.size(); ++s) { // skip untracked
      appendf(out, "Node %u, zone %8s, type %12s", static_cast<unsigned>(z.zone), "Normal",
              kStateName[s]);
      for (const std::uint64_t count : z.counts[s]) {
        appendf(out, " %6" PRIu64, count);
      }
      out += '\n';
    }
  }
  return out;
}

std::string render_smaps(const SmapsProcess& proc) {
  std::string out;
  for (const SmapsVma& v : proc.vmas) {
    appendf(out, "%" PRIx64 "-%" PRIx64 " %c%c%cp %s\n", v.range.begin, v.range.end,
            has(v.prot, Prot::kRead) ? 'r' : '-', has(v.prot, Prot::kWrite) ? 'w' : '-',
            has(v.prot, Prot::kExec) ? 'x' : '-', v.kind);
    meminfo_row(out, "Size:", v.range.size());
    meminfo_row(out, "Rss:", v.rss());
    meminfo_row(out, "AnonHugePages:", v.rss_2m);
    meminfo_row(out, "Gb1Pages:", v.rss_1g);
    meminfo_row(out, "Swap:", v.swapped);
    meminfo_row(out, "Locked:", v.locked ? v.rss() : 0);
    // Dominant backing page size, like the kernel's KernelPageSize.
    const std::uint64_t kps =
        v.rss_1g > 0 ? kHugePageSize : (v.rss_2m > 0 ? kLargePageSize : kSmallPageSize);
    appendf(out, "%-15s %8" PRIu64 " kB\n", "KernelPageSize:", kps / 1024);
    appendf(out, "THPeligible:    %d\n", v.thp_eligible ? 1 : 0);
  }
  return out;
}

std::string buddyinfo_text(os::Node& node) {
  std::vector<BuddyinfoZone> zones;
  capture_buddyinfo(node, zones);
  return render_buddyinfo(zones);
}

std::string meminfo_text(os::Node& node) {
  Meminfo info;
  capture_meminfo(node, info);
  return render_meminfo(info);
}

std::string vmstat_text(os::Node& node) {
  Vmstat stats;
  capture_vmstat(node, stats);
  return render_vmstat(stats);
}

std::string pagetypeinfo_text(os::Node& node) {
  std::vector<PagetypeinfoZone> zones;
  capture_pagetypeinfo(node, zones);
  return render_pagetypeinfo(zones);
}

std::string smaps_text(os::Node& node, const os::Process& proc) {
  SmapsProcess rec;
  capture_smaps(node, proc, rec);
  return render_smaps(rec);
}

std::string hpmmap_text(os::Node& node) {
  std::string out;
  if (const mm::ThpService* thp = node.thp()) {
    const mm::ThpStats& ts = thp->stats();
    appendf(out, "khugepaged: scanned %" PRIu64 " merged %" PRIu64 " aborted %" PRIu64
                 " lock_cycles %" PRIu64 "\n",
            ts.merge_candidates_scanned, ts.merges_completed, ts.merges_aborted,
            ts.total_merge_lock_cycles);
  }
  if (const mm::HugetlbPool* pool = node.hugetlb()) {
    const mm::HugetlbStats& hs = pool->stats();
    appendf(out, "hugetlb: pool_pages %" PRIu64 " faults_served %" PRIu64 " exhausted %" PRIu64
                 "\n",
            hs.pool_pages_total, hs.faults_served, hs.pool_exhausted);
  }
  const core::HpmmapModule* mod = node.hpmmap_module();
  if (mod == nullptr) {
    return out;
  }
  const core::ModuleStats& ms = mod->stats();
  appendf(out, "hpmmap: registered %" PRIu64 " syscalls %" PRIu64 " bytes_mapped %" PRIu64 "\n",
          ms.registered, ms.syscalls_interposed, ms.bytes_mapped);
  appendf(out, "hpmmap: map_2m %" PRIu64 " map_1g %" PRIu64 " demand_faults %" PRIu64
               " spurious_faults %" PRIu64 "\n",
          ms.map_2m, ms.map_1g, ms.demand_faults, ms.spurious_faults);
  const core::KittenAllocator& kitten = mod->allocator();
  for (ZoneId z = 0; z < kitten.zone_count(); ++z) {
    appendf(out, "hpmmap: zone %u kitten_free %" PRIu64 " kitten_total %" PRIu64 "\n",
            static_cast<unsigned>(z), kitten.free_bytes(z), kitten.total_bytes(z));
  }
  return out;
}

std::string procfs_dump(os::Node& node) {
  std::string out;
  const auto file = [&](const char* path, std::string body) {
    appendf(out, "==> %s <==\n", path);
    out += body;
    out += '\n';
  };
  file("/proc/buddyinfo", buddyinfo_text(node));
  file("/proc/meminfo", meminfo_text(node));
  file("/proc/vmstat", vmstat_text(node));
  file("/proc/pagetypeinfo", pagetypeinfo_text(node));
  const std::string hpmmap = hpmmap_text(node);
  if (!hpmmap.empty()) {
    file("/proc/hpmmap", hpmmap);
  }
  node.for_each_process([&](const os::Process& p) {
    if (!p.alive()) {
      return;
    }
    std::string path = "/proc/" + std::to_string(p.pid()) + "/smaps (" + p.name() + ")";
    file(path.c_str(), smaps_text(node, p));
  });
  return out;
}

} // namespace hpmmap::introspect
