#include "introspect/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string_view>

namespace hpmmap::introspect {

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return f.good();
}

/// Deterministic value formatting: integral values (the common case)
/// print exactly, everything else with enough digits to round-trip.
void append_value(std::string& out, double v) {
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

void append_seconds(std::string& out, Cycles ts, const trace::ExportOptions& opts) {
  const Cycles rel = ts >= opts.t0 ? ts - opts.t0 : 0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9f", static_cast<double>(rel) / opts.clock_hz);
  out += buf;
}

/// `node="n0",zone="0"` -> `node=n0;zone=0` (CSV- and track-name-safe).
std::string flat_labels(std::string_view labels) {
  std::string out;
  out.reserve(labels.size());
  for (const char c : labels) {
    if (c == '"') {
      continue;
    }
    out += c == ',' ? ';' : c;
  }
  return out;
}

/// OpenMetrics metric family name: the sample name minus any `_total`
/// suffix (counter samples carry the suffix, the family does not).
std::string_view family_name(const TimeSeries& s) {
  std::string_view name = s.metric;
  if (std::string_view{s.type} == "counter" && name.ends_with("_total")) {
    name.remove_suffix(6);
  }
  return name;
}

} // namespace

std::string openmetrics(const std::vector<TimeSeries>& series, const trace::ExportOptions& opts) {
  std::string out;
  std::vector<std::string_view> declared;
  for (const TimeSeries& s : series) {
    const std::string_view family = family_name(s);
    bool seen = false;
    for (const std::string_view d : declared) {
      seen = seen || d == family;
    }
    if (!seen) {
      declared.push_back(family);
      out += "# TYPE ";
      out += family;
      out += ' ';
      out += s.type;
      out += '\n';
    }
    for (const TimePoint& p : s.ordered()) {
      out += s.metric;
      if (!s.labels.empty()) {
        out += '{';
        out += s.labels;
        out += '}';
      }
      out += ' ';
      append_value(out, p.value);
      out += ' ';
      append_seconds(out, p.ts, opts);
      out += '\n';
    }
  }
  out += "# EOF\n";
  return out;
}

bool write_openmetrics(const std::string& path, const std::vector<TimeSeries>& series,
                       const trace::ExportOptions& opts) {
  return write_file(path, openmetrics(series, opts));
}

std::string telemetry_csv(const std::vector<TimeSeries>& series,
                          const trace::ExportOptions& opts) {
  std::string out = "metric,labels,ts_cycles,t_seconds,value\n";
  char buf[40];
  for (const TimeSeries& s : series) {
    const std::string labels = flat_labels(s.labels);
    for (const TimePoint& p : s.ordered()) {
      out += s.metric;
      out += ',';
      out += labels;
      std::snprintf(buf, sizeof(buf), ",%" PRIu64 ",", p.ts);
      out += buf;
      append_seconds(out, p.ts, opts);
      out += ',';
      append_value(out, p.value);
      out += '\n';
    }
  }
  return out;
}

bool write_telemetry_csv(const std::string& path, const std::vector<TimeSeries>& series,
                         const trace::ExportOptions& opts) {
  return write_file(path, telemetry_csv(series, opts));
}

std::string chrome_json_with_counters(const std::vector<trace::Event>& events,
                                      const std::vector<TimeSeries>& series,
                                      const trace::ExportOptions& opts) {
  std::string counters;
  const double us_per_cycle = 1e6 / opts.clock_hz;
  char buf[64];
  bool first = true;
  for (const TimeSeries& s : series) {
    std::string track = s.metric;
    const std::string labels = flat_labels(s.labels);
    if (!labels.empty()) {
      track += '{';
      track += labels;
      track += '}';
    }
    for (const TimePoint& p : s.ordered()) {
      if (!first) {
        counters += ",\n";
      }
      first = false;
      const Cycles rel = p.ts >= opts.t0 ? p.ts - opts.t0 : 0;
      counters += "{\"name\":\"";
      counters += track; // metric names and flat labels need no escaping
      std::snprintf(buf, sizeof(buf), "\",\"cat\":\"telemetry\",\"ph\":\"C\",\"ts\":%.3f",
                    static_cast<double>(rel) * us_per_cycle);
      counters += buf;
      counters += ",\"pid\":0,\"tid\":0,\"args\":{\"value\":";
      append_value(counters, p.value);
      counters += "}}";
    }
  }
  std::string out = trace::chrome_json(events, opts);
  if (counters.empty()) {
    return out;
  }
  // chrome_json() emits "[\n<events>\n]\n"; splice the counter objects
  // in before the closing bracket.
  const std::size_t close = out.rfind("\n]\n");
  if (close == std::string::npos) {
    return out; // unexpected tail: leave the valid event array alone
  }
  const bool has_events = !events.empty();
  std::string merged = out.substr(0, close);
  merged += has_events ? ",\n" : "";
  merged += counters;
  merged += "\n]\n";
  return merged;
}

bool write_chrome_json_with_counters(const std::string& path,
                                     const std::vector<trace::Event>& events,
                                     const std::vector<TimeSeries>& series,
                                     const trace::ExportOptions& opts) {
  return write_file(path, chrome_json_with_counters(events, series, opts));
}

} // namespace hpmmap::introspect
