#include "introspect/sampler.hpp"

#include <utility>

#include "core/kitten_allocator.hpp"
#include "core/module.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/fault.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/memory_system.hpp"
#include "linux_mm/page_cache.hpp"
#include "linux_mm/thp.hpp"
#include "os/node.hpp"
#include "os/process.hpp"

namespace hpmmap::introspect {

namespace {

std::string zone_labels(const std::string& node_name, ZoneId zone) {
  return "node=\"" + node_name + "\",zone=\"" + std::to_string(zone) + "\"";
}

std::string node_labels(const std::string& node_name) {
  return "node=\"" + node_name + "\"";
}

} // namespace

void TelemetrySampler::add_node(os::Node& node) {
  if (!config_.on()) {
    return;
  }
  NodeEntry entry;
  entry.node = &node;
  entry.first_series = series_.size();
  const std::string& name = node.config().name;
  const auto add = [&](std::string metric, std::string labels, const char* type) {
    TimeSeries s;
    s.metric = std::move(metric);
    s.labels = std::move(labels);
    s.type = type;
    s.capacity = config_.max_samples;
    s.points.reserve(config_.max_samples);
    series_.push_back(std::move(s));
  };
  const std::uint32_t zones = node.memory().zone_count();
  for (ZoneId z = 0; z < zones; ++z) {
    add("hpmmap_zone_free_bytes", zone_labels(name, z), "gauge");
    add("hpmmap_zone_cached_bytes", zone_labels(name, z), "gauge");
    add("hpmmap_zone_fragmentation", zone_labels(name, z), "gauge");
    add("hpmmap_zone_free_blocks",
        zone_labels(name, z) + ",order=\"9\"", "gauge");
  }
  if (node.hugetlb() != nullptr) {
    for (ZoneId z = 0; z < zones; ++z) {
      add("hpmmap_hugetlb_free_pages", zone_labels(name, z), "gauge");
    }
  }
  add("hpmmap_pgfault_total", node_labels(name), "counter");
  add("hpmmap_pgfault_per_second", node_labels(name), "gauge");
  add("hpmmap_pswpout_total", node_labels(name), "counter");
  add("hpmmap_rss_bytes", node_labels(name), "gauge");
  if (node.thp() != nullptr) {
    add("hpmmap_thp_collapse_total", node_labels(name), "counter");
    add("hpmmap_thp_fault_fallback_total", node_labels(name), "counter");
  }
  if (node.hpmmap_module() != nullptr) {
    add("hpmmap_module_free_bytes", node_labels(name), "gauge");
    add("hpmmap_module_bytes_mapped", node_labels(name), "gauge");
  }
  nodes_.push_back(entry);
}

void TelemetrySampler::add_probe(std::string metric, std::string labels, const char* type,
                                 std::function<double()> read) {
  if (!config_.on()) {
    return;
  }
  TimeSeries s;
  s.metric = std::move(metric);
  s.labels = std::move(labels);
  s.type = type;
  s.capacity = config_.max_samples;
  s.points.reserve(config_.max_samples);
  Probe p;
  p.series = series_.size();
  p.read = std::move(read);
  series_.push_back(std::move(s));
  probes_.push_back(std::move(p));
}

void TelemetrySampler::start() {
  if (!config_.on() || (nodes_.empty() && probes_.empty())) {
    return;
  }
  tick();
}

void TelemetrySampler::stop() {
  if (pending_.valid()) {
    engine_.cancel(pending_);
    pending_ = sim::EventId{};
  }
}

std::vector<TimeSeries> TelemetrySampler::take() {
  stop();
  nodes_.clear();
  probes_.clear();
  return std::move(series_);
}

void TelemetrySampler::tick() {
  for (NodeEntry& entry : nodes_) {
    sample(entry);
  }
  const Cycles now = engine_.now();
  for (Probe& p : probes_) {
    series_[p.series].append(now, p.read());
  }
  ++samples_;
  pending_ = engine_.schedule_daemon(config_.interval, [this] { tick(); });
}

void TelemetrySampler::sample(NodeEntry& entry) {
  os::Node& node = *entry.node;
  const Cycles now = engine_.now();
  std::size_t i = entry.first_series;
  const auto emit = [&](double value) { series_[i++].append(now, value); };

  mm::MemorySystem& mem = node.memory();
  const std::uint32_t zones = mem.zone_count();
  for (ZoneId z = 0; z < zones; ++z) {
    const mm::BuddyAllocator& buddy = mem.buddy(z);
    emit(static_cast<double>(buddy.free_bytes()));
    emit(static_cast<double>(mem.cache(z).cached_bytes()));
    emit(buddy.fragmentation());
    emit(static_cast<double>(buddy.free_blocks(mm::kLargePageOrder)));
  }
  if (const mm::HugetlbPool* pool = node.hugetlb()) {
    for (ZoneId z = 0; z < zones; ++z) {
      emit(static_cast<double>(pool->free_pages(z)));
    }
  }
  std::uint64_t pgfault = 0;
  std::uint64_t rss = 0;
  node.for_each_process([&](const os::Process& p) {
    const mm::FaultStats& fs = p.fault_stats();
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      pgfault += fs.count[k];
    }
    if (p.alive()) {
      rss += p.address_space().rss_bytes();
    }
  });
  emit(static_cast<double>(pgfault));
  // vmstat-style derived rate: faults per simulated second over the
  // last interval. The first sample has no interval behind it.
  double rate = 0.0;
  if (entry.primed) {
    const double interval_s = node.seconds(config_.interval);
    rate = interval_s > 0.0
               ? static_cast<double>(pgfault - entry.last_pgfault) / interval_s
               : 0.0;
  }
  emit(rate);
  entry.last_pgfault = pgfault;
  entry.primed = true;
  emit(static_cast<double>(node.swapped_out_total()));
  emit(static_cast<double>(rss));
  if (const mm::ThpService* thp = node.thp()) {
    emit(static_cast<double>(thp->stats().merges_completed));
    emit(static_cast<double>(thp->stats().fault_huge_fallback));
  }
  if (const core::HpmmapModule* mod = node.hpmmap_module()) {
    const core::KittenAllocator& kitten = mod->allocator();
    std::uint64_t free = 0;
    for (ZoneId z = 0; z < kitten.zone_count(); ++z) {
      free += kitten.free_bytes(z);
    }
    emit(static_cast<double>(free));
    emit(static_cast<double>(mod->stats().bytes_mapped));
  }
}

} // namespace hpmmap::introspect
