// Engine-driven telemetry sampler: bounded ring-buffered time series of
// mm state, captured at a configurable virtual-time interval.
//
// The sampler schedules itself as a *daemon* event on the simulation
// engine (sim::Engine::schedule_daemon): ticks fire on the virtual
// clock between real events but never keep the engine alive or extend a
// run. Each tick reads O(zones + processes) cheap accessors — free
// bytes, fragmentation, cumulative counters — and appends one point per
// series into preallocated rings; it consumes no randomness, charges no
// cycles, emits no trace events and takes no locks, so a sampled run is
// byte-identical to an unsampled one in every other output (trace
// streams, golden tables, results). That is the determinism contract
// tests/test_introspect.cpp pins.
//
// Series live on the sampler (per run, on the run's thread), so
// BatchRunner's submission-order merge gives byte-identical telemetry
// for any --jobs value.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace hpmmap::os {
class Node;
}

namespace hpmmap::introspect {

struct TimePoint {
  Cycles ts = 0; // absolute virtual time (subtract the run's t0)
  double value = 0.0;
};

/// One metric instance: an OpenMetrics-style (name, label set) pair
/// with a bounded ring of samples. Oldest points are overwritten once
/// `capacity` is reached (`dropped` counts them), like the trace
/// subsystem's flight recorder.
struct TimeSeries {
  std::string metric;      // e.g. "hpmmap_zone_free_bytes"
  std::string labels;      // rendered pairs: node="n0",zone="0" (may be "")
  const char* type = "gauge"; // OpenMetrics family type: "gauge" | "counter"
  std::vector<TimePoint> points; // ring storage; oldest at ring_start
  std::size_t ring_start = 0;
  std::size_t capacity = 0;
  std::uint64_t dropped = 0;

  void append(Cycles ts, double value) {
    if (points.size() < capacity) {
      points.push_back(TimePoint{ts, value});
      return;
    }
    if (capacity == 0) {
      ++dropped;
      return;
    }
    points[ring_start] = TimePoint{ts, value};
    ring_start = (ring_start + 1) % capacity;
    ++dropped;
  }

  /// Chronological copy (unwinds the ring).
  [[nodiscard]] std::vector<TimePoint> ordered() const {
    std::vector<TimePoint> out;
    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      out.push_back(points[(ring_start + i) % points.size()]);
    }
    return out;
  }
};

struct SamplerConfig {
  /// Virtual cycles between samples; 0 disables the sampler entirely.
  Cycles interval = 0;
  /// Ring capacity per series; oldest samples are overwritten beyond.
  std::size_t max_samples = 4096;

  [[nodiscard]] bool on() const noexcept { return interval > 0; }
};

class TelemetrySampler {
 public:
  TelemetrySampler(sim::Engine& engine, SamplerConfig config)
      : engine_(engine), config_(config) {}
  ~TelemetrySampler() { stop(); }
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Register a node to sample; pre-creates its series (fixed set, fixed
  /// order — the determinism anchor). Call before start().
  void add_node(os::Node& node);

  /// Register a custom probe: `read` is called once per tick, after the
  /// node series, in registration order. Probes must be pure observers —
  /// read a counter, consume no randomness, mutate nothing — the same
  /// contract the node accessors follow. This is how workloads expose
  /// their own state (queue depth, in-flight requests, shed totals)
  /// without the sampler knowing their types. Call before start(); the
  /// probe must outlive the sampler's last tick.
  void add_probe(std::string metric, std::string labels, const char* type,
                 std::function<double()> read);

  /// Take the first sample now and tick every `interval` cycles from
  /// here on daemon events. No-op when the config is off.
  void start();

  /// Cancel the pending tick (idempotent; destructor calls it).
  void stop();

  [[nodiscard]] std::uint64_t samples_taken() const noexcept { return samples_; }

  /// Stop and move the collected series out (sampler becomes empty).
  [[nodiscard]] std::vector<TimeSeries> take();

 private:
  struct NodeEntry {
    os::Node* node = nullptr;
    std::size_t first_series = 0; // index into series_
    std::uint64_t last_pgfault = 0; // for the vmstat-style derived rate
    bool primed = false;
  };

  struct Probe {
    std::size_t series = 0; // index into series_
    std::function<double()> read;
  };

  void tick();
  void sample(NodeEntry& entry);

  sim::Engine& engine_;
  SamplerConfig config_;
  std::vector<TimeSeries> series_;
  std::vector<NodeEntry> nodes_;
  std::vector<Probe> probes_;
  sim::EventId pending_{};
  std::uint64_t samples_ = 0;
};

} // namespace hpmmap::introspect
