// Structured snapshots of live mm state — the record form behind the
// procfs renderers (introspect/procfs.hpp) and the telemetry sampler
// (introspect/sampler.hpp).
//
// Linux exposes this exact layer to userspace as /proc/buddyinfo,
// /proc/meminfo, /proc/vmstat, /proc/pagetypeinfo and per-process
// smaps; the paper's §IV methodology (and every figure tracking state
// over time — fragmentation decay, hugetlb pool drain, khugepaged
// progress) reads it from there. The capture functions here are pure
// observers: they consume no randomness, charge no cycles, emit no
// trace events and mutate nothing, so capturing a snapshot mid-run can
// never perturb a simulation — the determinism contract the sampler
// tests pin down.
//
// Capture reuses caller-owned record buffers (clear + refill, no
// reallocation once warm), keeping the periodic sampling path free of
// steady-state heap traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "hw/mem_map.hpp"

namespace hpmmap::os {
class Node;
class Process;
}

namespace hpmmap::introspect {

/// One /proc/buddyinfo row: free block counts per order for one zone's
/// buddy allocator (Linux or Kitten).
struct BuddyinfoZone {
  ZoneId zone = 0;
  /// "Normal" for Linux zones, "Kitten" for HPMMAP's offlined heaps.
  const char* zone_name = "Normal";
  /// free_counts[o] = free blocks of order o; sized max_order + 1.
  std::vector<std::uint64_t> free_counts;
};

/// /proc/meminfo totals, in bytes (the renderer divides to kB).
struct Meminfo {
  std::uint64_t mem_total = 0;      // Linux-online bytes
  std::uint64_t mem_free = 0;       // buddy freelists, all zones
  std::uint64_t cached = 0;         // page cache
  std::uint64_t anon_pages = 0;     // resident anon (incl. huge)
  std::uint64_t anon_huge_pages = 0; // 2M-backed portion of the above
  std::uint64_t page_tables = 0;    // table-structure pages, bytes
  std::uint64_t hugepages_total = 0; // hugetlb pool, pages
  std::uint64_t hugepages_free = 0;
  std::uint64_t hpmmap_offline = 0; // hot-removed bytes (module loaded)
  std::uint64_t hpmmap_free = 0;    // free bytes in the Kitten heaps
};

/// /proc/vmstat counters — cumulative event counts since boot.
struct Vmstat {
  std::uint64_t pgfault = 0;          // all process faults, all kinds
  std::uint64_t pgalloc = 0;          // buddy allocations, all zones
  std::uint64_t pgfree = 0;           // buddy frees, all zones
  std::uint64_t pswpout = 0;          // anon pages evicted to swap
  std::uint64_t thp_fault_alloc = 0;  // huge-page faults served
  std::uint64_t thp_fault_fallback = 0;
  std::uint64_t thp_collapse_alloc = 0; // khugepaged merges completed
  std::uint64_t thp_collapse_abort = 0;
  std::uint64_t thp_split_page = 0;     // splits for mlock
  std::uint64_t htlb_fault_alloc = 0;   // hugetlb faults served
  std::uint64_t htlb_pool_exhausted = 0;
  std::uint64_t compact_stall = 0;      // direct-compaction entries
  std::uint64_t allocstall = 0;         // direct-reclaim entries
};

/// One /proc/pagetypeinfo row: per-zone counts of tracked block heads
/// by (FrameState, order), from the mem_map ownership array.
struct PagetypeinfoZone {
  ZoneId zone = 0;
  /// counts[state][order]; state indexed by hw::FrameState (kBuddyFree,
  /// kCacheClean, kCacheDirty, kHugetlbPool, kPcpCache), order 0..max_order.
  std::vector<std::vector<std::uint64_t>> counts;
};

/// One smaps entry: a VMA plus its resident-set breakdown by the page
/// size actually backing it (the /proc/<pid>/smaps Rss/AnonHugePages
/// decomposition, extended with a 1G bucket for the HPMMAP window).
struct SmapsVma {
  Range range{};
  Prot prot = Prot::kNone;
  /// mm::name(VmaKind) for Linux VMAs, "hpmmap" for module regions.
  const char* kind = "anon";
  bool thp_eligible = false;
  bool locked = false;
  bool hpmmap = false;       // lives in the module window
  std::uint64_t rss_4k = 0;  // bytes resident via 4K leaves
  std::uint64_t rss_2m = 0;  // bytes resident via 2M leaves
  std::uint64_t rss_1g = 0;  // bytes resident via 1G leaves
  std::uint64_t swapped = 0; // bytes swapped out of this VMA

  [[nodiscard]] std::uint64_t rss() const noexcept { return rss_4k + rss_2m + rss_1g; }
};

/// Per-process smaps: every Linux VMA plus every HPMMAP region, in
/// ascending address order within each group.
struct SmapsProcess {
  Pid pid = 0;
  std::string name;
  const char* policy = "?";
  std::vector<SmapsVma> vmas;
};

// --- capture ----------------------------------------------------------
// Each function clears and refills `out`; repeated captures into the
// same record reuse its buffers.

/// Linux zones first, then (when the module is loaded) one Kitten row
/// per offlined heap range.
void capture_buddyinfo(os::Node& node, std::vector<BuddyinfoZone>& out);
void capture_meminfo(os::Node& node, Meminfo& out);
void capture_vmstat(os::Node& node, Vmstat& out);
void capture_pagetypeinfo(os::Node& node, std::vector<PagetypeinfoZone>& out);
/// Smaps for one process: one page-table walk buckets every leaf into
/// the VMA containing it (Linux tree first, module regions for leaves
/// in the HPMMAP window).
void capture_smaps(os::Node& node, const os::Process& proc, SmapsProcess& out);

} // namespace hpmmap::introspect
