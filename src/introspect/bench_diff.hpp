// Bench regression diffing: compare two BENCH_*.json self-reports and
// produce a pass/fail verdict with per-metric deltas.
//
// The parser is a deliberately small JSON-subset reader (objects,
// numbers, strings, booleans, flat arrays) that flattens nesting with
// dotted keys: {"baseline":{"events_per_sec":1.0}} becomes
// "baseline.events_per_sec". That covers every file the benches emit
// without pulling in a JSON dependency.
//
// The gate logic is machine-independence-aware: absolute throughput
// numbers (events/sec, wall seconds) vary wildly across runners, so by
// default only the self-relative `improvement_ratio` keys — measured
// against baselines compiled into the same binary — are gated, and a
// false `deterministic_match` flag fails outright. Everything shared
// and numeric is still reported as an informational delta.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpmmap::introspect {

/// Scalars of one bench JSON, flattened with dotted keys.
struct BenchDoc {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
  std::map<std::string, bool> bools;
};

/// Parse a bench JSON document; nullopt on malformed input.
[[nodiscard]] std::optional<BenchDoc> parse_bench_json(std::string_view text);

struct MetricDelta {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  /// current / baseline; 0 when the baseline is 0.
  double ratio = 0.0;
  bool gated = false;     // participates in the pass/fail verdict
  bool regressed = false; // gated and beyond the threshold
};

struct DiffResult {
  std::vector<MetricDelta> deltas; // shared numeric keys, sorted by key
  std::vector<std::string> notes;  // verdict-affecting observations
  bool pass = true;
  /// The gate threshold this diff applied — format_diff prints it in the
  /// verdict line so per-bench --threshold-for overrides are auditable.
  double threshold = 0.0;

  [[nodiscard]] std::size_t regressions() const noexcept {
    std::size_t n = 0;
    for (const MetricDelta& d : deltas) {
      n += d.regressed ? 1 : 0;
    }
    return n;
  }
};

/// Keys gated by default: every key ending in `improvement_ratio` or
/// `speedup` (higher is better, self-relative, machine-independent).
[[nodiscard]] bool gated_by_default(std::string_view key);

/// Compare `current` against `baseline`. A gated metric regresses when
/// it falls below baseline * (1 - threshold). Non-numeric disagreements
/// that matter (a false deterministic_match, a changed bench identity)
/// fail via notes. `gate_keys` overrides the default gate set when
/// non-empty (exact key match).
[[nodiscard]] DiffResult diff_bench(const BenchDoc& baseline, const BenchDoc& current,
                                    double threshold,
                                    const std::vector<std::string>& gate_keys = {});

/// Human-readable report of a diff (one line per delta plus notes).
[[nodiscard]] std::string format_diff(const DiffResult& result, std::string_view title);

} // namespace hpmmap::introspect
