#include "introspect/snapshot.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/kitten_allocator.hpp"
#include "core/module.hpp"
#include "hw/phys_mem.hpp"
#include "linux_mm/address_space.hpp"
#include "linux_mm/buddy_allocator.hpp"
#include "linux_mm/hugetlbfs.hpp"
#include "linux_mm/page_cache.hpp"
#include "linux_mm/thp.hpp"
#include "linux_mm/vma.hpp"
#include "os/node.hpp"
#include "os/process.hpp"

namespace hpmmap::introspect {

void capture_buddyinfo(os::Node& node, std::vector<BuddyinfoZone>& out) {
  mm::MemorySystem& mem = node.memory();
  const std::uint32_t linux_zones = mem.zone_count();
  std::uint32_t kitten_zones = 0;
  if (const core::HpmmapModule* mod = node.hpmmap_module()) {
    kitten_zones = mod->allocator().zone_count();
  }
  out.resize(linux_zones + kitten_zones);
  for (ZoneId z = 0; z < linux_zones; ++z) {
    const mm::BuddyAllocator& buddy = mem.buddy(z);
    BuddyinfoZone& row = out[z];
    row.zone = z;
    row.zone_name = "Normal";
    row.free_counts.assign(buddy.max_order() + 1, 0);
    for (unsigned o = 0; o <= buddy.max_order(); ++o) {
      row.free_counts[o] = buddy.free_blocks(o);
    }
  }
  if (const core::HpmmapModule* mod = node.hpmmap_module()) {
    // The Kitten heaps are one buddy per offlined range; aggregate per
    // zone like the kernel aggregates per-cpu lists into one zone row.
    for (ZoneId z = 0; z < kitten_zones; ++z) {
      BuddyinfoZone& row = out[linux_zones + z];
      row.zone = z;
      row.zone_name = "Kitten";
      row.free_counts.assign(1, 0);
    }
    mod->allocator().for_each_buddy([&](ZoneId z, const mm::BuddyAllocator& buddy) {
      BuddyinfoZone& row = out[linux_zones + z];
      if (row.free_counts.size() < buddy.max_order() + 1) {
        row.free_counts.resize(buddy.max_order() + 1, 0);
      }
      for (unsigned o = 0; o <= buddy.max_order(); ++o) {
        row.free_counts[o] += buddy.free_blocks(o);
      }
    });
  }
}

void capture_meminfo(os::Node& node, Meminfo& out) {
  out = Meminfo{};
  mm::MemorySystem& mem = node.memory();
  hw::PhysicalMemory& phys = node.phys();
  for (const hw::Zone& z : phys.zones()) {
    out.mem_total += phys.online_bytes(z.id);
    out.hpmmap_offline += phys.offlined_bytes(z.id);
  }
  for (ZoneId z = 0; z < mem.zone_count(); ++z) {
    out.mem_free += mem.free_bytes(z);
    out.cached += mem.cache(z).cached_bytes();
  }
  node.for_each_process([&](const os::Process& p) {
    if (!p.alive()) {
      return;
    }
    const hw::MappingMix mix = p.address_space().mapping_mix();
    out.page_tables += p.address_space().page_table().table_pages() * kSmallPageSize;
    switch (p.policy()) {
      case os::MmPolicy::kLinuxThp:
      case os::MmPolicy::kLinuxPlain:
        // THP-backed 2M leaves are anon huge pages; the kernel counts
        // them inside AnonPages too.
        out.anon_pages += mix.total();
        out.anon_huge_pages += mix.bytes_2m;
        break;
      case os::MmPolicy::kHugetlbfs:
        // 2M leaves of a hugetlbfs process are pool pages — accounted
        // under HugePages_*, not AnonPages.
        out.anon_pages += mix.bytes_4k;
        break;
      case os::MmPolicy::kHpmmap:
        // Window mappings (2M/1G) live in offlined memory Linux does
        // not account; only the Linux-side 4K residue is anon.
        out.anon_pages += mix.bytes_4k;
        break;
    }
  });
  if (const mm::HugetlbPool* pool = node.hugetlb()) {
    for (ZoneId z = 0; z < mem.zone_count(); ++z) {
      out.hugepages_total += pool->total_pages(z);
      out.hugepages_free += pool->free_pages(z);
    }
  }
  if (const core::HpmmapModule* mod = node.hpmmap_module()) {
    const core::KittenAllocator& kitten = mod->allocator();
    for (ZoneId z = 0; z < kitten.zone_count(); ++z) {
      out.hpmmap_free += kitten.free_bytes(z);
    }
  }
}

void capture_vmstat(os::Node& node, Vmstat& out) {
  out = Vmstat{};
  mm::MemorySystem& mem = node.memory();
  // Cumulative like the kernel's: dead processes keep contributing.
  node.for_each_process([&](const os::Process& p) {
    const mm::FaultStats& fs = p.fault_stats();
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      out.pgfault += fs.count[k];
    }
  });
  for (ZoneId z = 0; z < mem.zone_count(); ++z) {
    const mm::BuddyStats& bs = mem.buddy(z).stats();
    out.pgalloc += bs.allocs;
    out.pgfree += bs.frees;
    out.allocstall += bs.failed_allocs;
  }
  out.pswpout = node.swapped_out_total();
  if (const mm::ThpService* thp = node.thp()) {
    const mm::ThpStats& ts = thp->stats();
    out.thp_fault_alloc = ts.fault_huge_success;
    out.thp_fault_fallback = ts.fault_huge_fallback;
    out.thp_collapse_alloc = ts.merges_completed;
    out.thp_collapse_abort = ts.merges_aborted;
    out.thp_split_page = ts.split_on_mlock;
  }
  if (const mm::HugetlbPool* pool = node.hugetlb()) {
    out.htlb_fault_alloc = pool->stats().faults_served;
    out.htlb_pool_exhausted = pool->stats().pool_exhausted;
  }
}

void capture_pagetypeinfo(os::Node& node, std::vector<PagetypeinfoZone>& out) {
  mm::MemorySystem& mem = node.memory();
  out.resize(mem.zone_count());
  // kUntracked..kPcpCache — index by the FrameState value directly.
  constexpr std::size_t kStateCount = 6;
  for (ZoneId z = 0; z < mem.zone_count(); ++z) {
    const mm::BuddyAllocator& buddy = mem.buddy(z);
    PagetypeinfoZone& row = out[z];
    row.zone = z;
    row.counts.resize(kStateCount);
    for (auto& per_order : row.counts) {
      per_order.assign(buddy.max_order() + 1, 0);
    }
    buddy.mem_map().for_each_head([&](Addr, hw::FrameState st, unsigned order) {
      const auto s = static_cast<std::size_t>(st);
      if (s < kStateCount && order < row.counts[s].size()) {
        ++row.counts[s][order];
      }
    });
  }
}

void capture_smaps(os::Node& node, const os::Process& proc, SmapsProcess& out) {
  out.pid = proc.pid();
  out.name = proc.name();
  out.policy = os::name(proc.policy()).data();
  out.vmas.clear();

  const mm::AddressSpace& as = proc.address_space();
  as.vmas().for_each([&](const mm::Vma& v) {
    SmapsVma s;
    s.range = v.range;
    s.prot = v.prot;
    s.kind = mm::name(v.kind).data();
    s.thp_eligible = v.thp_eligible;
    s.locked = v.locked;
    out.vmas.push_back(s);
  });
  if (const core::HpmmapModule* mod = node.hpmmap_module()) {
    if (const mm::VmaTree* regions = mod->regions_for(proc.pid())) {
      regions->for_each([&](const mm::Vma& v) {
        SmapsVma s;
        s.range = v.range;
        s.prot = v.prot;
        s.kind = "hpmmap";
        s.hpmmap = true;
        out.vmas.push_back(s);
      });
    }
  }
  std::sort(out.vmas.begin(), out.vmas.end(),
            [](const SmapsVma& a, const SmapsVma& b) { return a.range.begin < b.range.begin; });

  // One page-table walk buckets every leaf into the VMA containing it.
  // Leaves never straddle VMA boundaries (the auditor's invariant), so
  // the containing VMA is found by binary search on range.begin.
  const auto vma_for = [&](Addr vaddr) -> SmapsVma* {
    auto it = std::upper_bound(
        out.vmas.begin(), out.vmas.end(), vaddr,
        [](Addr a, const SmapsVma& v) { return a < v.range.begin; });
    if (it == out.vmas.begin()) {
      return nullptr;
    }
    --it;
    return it->range.contains(vaddr) ? &*it : nullptr;
  };
  as.page_table().for_each_leaf([&](Addr vaddr, const mm::Translation& t) {
    SmapsVma* v = vma_for(vaddr);
    if (v == nullptr) {
      return; // leaf outside every VMA: the auditor flags it, not smaps
    }
    switch (t.size) {
      case PageSize::k4K: v->rss_4k += bytes(t.size); break;
      case PageSize::k2M: v->rss_2m += bytes(t.size); break;
      case PageSize::k1G: v->rss_1g += bytes(t.size); break;
    }
  });
  for (const Addr page : as.swapped_set()) {
    if (SmapsVma* v = vma_for(page)) {
      v->swapped += kSmallPageSize;
    }
  }
}

} // namespace hpmmap::introspect
