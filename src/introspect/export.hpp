// Telemetry exporters: OpenMetrics text, flat CSV, and Perfetto counter
// tracks spliced into the existing Chrome trace-event export so the
// fragmentation/pool/fault-rate curves render alongside the tracepoint
// streams of src/trace.
//
// All numeric formatting is locale-independent and exact for integral
// values (the common case — byte totals and counters), so exported text
// is byte-identical for identical series: the `--jobs` determinism
// contract extends through the files on disk.
#pragma once

#include <string>
#include <vector>

#include "introspect/sampler.hpp"
#include "trace/export.hpp"

namespace hpmmap::introspect {

/// OpenMetrics exposition text: one `# TYPE` line per metric family
/// (first-appearance order), every sample with a timestamp in seconds
/// of virtual time since `opts.t0`, terminated by `# EOF`.
[[nodiscard]] std::string openmetrics(const std::vector<TimeSeries>& series,
                                      const trace::ExportOptions& opts = {});

bool write_openmetrics(const std::string& path, const std::vector<TimeSeries>& series,
                       const trace::ExportOptions& opts = {});

/// CSV with header `metric,labels,ts_cycles,t_seconds,value`; labels
/// flatten to `;`-joined `key=value` pairs so the field stays
/// comma-free.
[[nodiscard]] std::string telemetry_csv(const std::vector<TimeSeries>& series,
                                        const trace::ExportOptions& opts = {});

bool write_telemetry_csv(const std::string& path, const std::vector<TimeSeries>& series,
                         const trace::ExportOptions& opts = {});

/// trace::chrome_json() plus one Perfetto counter track per series
/// ("ph":"C", track name `metric{labels}`): open the file in Perfetto
/// and the telemetry curves draw above the event tracks.
[[nodiscard]] std::string chrome_json_with_counters(const std::vector<trace::Event>& events,
                                                    const std::vector<TimeSeries>& series,
                                                    const trace::ExportOptions& opts = {});

bool write_chrome_json_with_counters(const std::string& path,
                                     const std::vector<trace::Event>& events,
                                     const std::vector<TimeSeries>& series,
                                     const trace::ExportOptions& opts = {});

} // namespace hpmmap::introspect
