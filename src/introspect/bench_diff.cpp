#include "introspect/bench_diff.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hpmmap::introspect {

namespace {

/// Recursive-descent reader over the JSON subset the benches emit.
class Parser {
 public:
  Parser(std::string_view text, BenchDoc& doc) : text_(text), doc_(doc) {}

  [[nodiscard]] bool parse() {
    skip_ws();
    if (!parse_value("")) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    if (!consume('"')) {
      return false;
    }
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        c = text_[pos_++];
        switch (c) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: break; // \" \\ \/ pass through
        }
      }
      out += c;
    }
    return consume('"');
  }

  [[nodiscard]] bool parse_value(const std::string& key) {
    skip_ws();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return parse_object(key);
    }
    if (c == '[') {
      return parse_array(key);
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) {
        return false;
      }
      doc_.strings[key] = std::move(s);
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      doc_.bools[key] = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      doc_.bools[key] = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    // Number.
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      return false;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    doc_.numbers[key] = v;
    return true;
  }

  [[nodiscard]] bool parse_object(const std::string& prefix) {
    if (!consume('{')) {
      return false;
    }
    skip_ws();
    if (consume('}')) {
      return true;
    }
    for (;;) {
      skip_ws();
      std::string name;
      if (!parse_string(name)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      const std::string key = prefix.empty() ? name : prefix + "." + name;
      if (!parse_value(key)) {
        return false;
      }
      skip_ws();
      if (consume(',')) {
        continue;
      }
      return consume('}');
    }
  }

  [[nodiscard]] bool parse_array(const std::string& prefix) {
    if (!consume('[')) {
      return false;
    }
    skip_ws();
    if (consume(']')) {
      return true;
    }
    for (std::size_t i = 0;; ++i) {
      if (!parse_value(prefix + "." + std::to_string(i))) {
        return false;
      }
      skip_ws();
      if (consume(',')) {
        continue;
      }
      return consume(']');
    }
  }

  std::string_view text_;
  BenchDoc& doc_;
  std::size_t pos_ = 0;
};

} // namespace

std::optional<BenchDoc> parse_bench_json(std::string_view text) {
  BenchDoc doc;
  Parser p(text, doc);
  if (!p.parse()) {
    return std::nullopt;
  }
  return doc;
}

bool gated_by_default(std::string_view key) {
  return key.ends_with("improvement_ratio") || key.ends_with("speedup");
}

DiffResult diff_bench(const BenchDoc& baseline, const BenchDoc& current, double threshold,
                      const std::vector<std::string>& gate_keys) {
  DiffResult result;
  result.threshold = threshold;
  const auto is_gated = [&](const std::string& key) {
    if (gate_keys.empty()) {
      return gated_by_default(key);
    }
    for (const std::string& g : gate_keys) {
      if (g == key) {
        return true;
      }
    }
    return false;
  };

  for (const auto& [key, base_value] : baseline.numbers) {
    const auto it = current.numbers.find(key);
    if (it == current.numbers.end()) {
      if (is_gated(key)) {
        result.notes.push_back("gated metric missing from current: " + key);
        result.pass = false;
      }
      continue;
    }
    MetricDelta d;
    d.key = key;
    d.baseline = base_value;
    d.current = it->second;
    d.ratio = base_value != 0.0 ? it->second / base_value : 0.0;
    d.gated = is_gated(key);
    d.regressed = d.gated && d.current < d.baseline * (1.0 - threshold);
    result.pass = result.pass && !d.regressed;
    result.deltas.push_back(std::move(d));
  }

  // Identity and determinism checks: a renamed bench or a divergent
  // parallel run is a failure no threshold can excuse.
  const auto base_bench = baseline.strings.find("bench");
  const auto cur_bench = current.strings.find("bench");
  if (base_bench != baseline.strings.end() && cur_bench != current.strings.end() &&
      base_bench->second != cur_bench->second) {
    result.notes.push_back("bench identity changed: " + base_bench->second + " vs " +
                           cur_bench->second);
    result.pass = false;
  }
  for (const auto& [key, value] : current.bools) {
    if (key.ends_with("deterministic_match") && !value) {
      result.notes.push_back("determinism check failed: " + key + " is false");
      result.pass = false;
    }
  }
  return result;
}

std::string format_diff(const DiffResult& result, std::string_view title) {
  std::string out;
  out += "== ";
  out += title;
  out += " ==\n";
  char buf[192];
  for (const MetricDelta& d : result.deltas) {
    std::snprintf(buf, sizeof(buf), "  %-40s %14.4g -> %14.4g  (%+7.2f%%)%s%s\n", d.key.c_str(),
                  d.baseline, d.current, (d.ratio - 1.0) * 100.0, d.gated ? " [gated]" : "",
                  d.regressed ? " REGRESSED" : "");
    out += buf;
  }
  for (const std::string& note : result.notes) {
    out += "  note: " + note + "\n";
  }
  // The verdict names the threshold it actually applied so a per-bench
  // --threshold-for override is visible in the log, not silent.
  std::snprintf(buf, sizeof(buf), "  %s (threshold %.4g%%)\n", result.pass ? "PASS" : "FAIL",
                result.threshold * 100.0);
  out += buf;
  return out;
}

} // namespace hpmmap::introspect
