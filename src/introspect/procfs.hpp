// Kernel-faithful procfs text rendering over introspect/snapshot.hpp
// records.
//
// Formats follow the kernel files they emulate (column widths, kB
// units, field order) so existing eyeballs and scripts transfer:
//   /proc/buddyinfo       per-zone per-order free block counts
//   /proc/meminfo         byte totals, rendered in kB
//   /proc/vmstat          cumulative event counters
//   /proc/pagetypeinfo    block-head counts by owner state and order
//   /proc/<pid>/smaps     per-VMA RSS breakdown by backing page size
// plus two files the real HPMMAP module would expose through procfs:
//   /proc/hpmmap          module + Kitten allocator stats
//   khugepaged/hugetlb    daemon and pool stats
//
// Fidelity notes live in DESIGN.md §10; everything rendered here is
// integral (counts, kB), so the text is bit-stable across compilers —
// the golden-file contract.
#pragma once

#include <string>
#include <vector>

#include "introspect/snapshot.hpp"

namespace hpmmap::os {
class Node;
class Process;
}

namespace hpmmap::introspect {

// --- renderers over captured records -----------------------------------
[[nodiscard]] std::string render_buddyinfo(const std::vector<BuddyinfoZone>& zones);
[[nodiscard]] std::string render_meminfo(const Meminfo& info);
[[nodiscard]] std::string render_vmstat(const Vmstat& stats);
[[nodiscard]] std::string render_pagetypeinfo(const std::vector<PagetypeinfoZone>& zones);
[[nodiscard]] std::string render_smaps(const SmapsProcess& proc);

// --- capture + render in one step ---------------------------------------
[[nodiscard]] std::string buddyinfo_text(os::Node& node);
[[nodiscard]] std::string meminfo_text(os::Node& node);
[[nodiscard]] std::string vmstat_text(os::Node& node);
[[nodiscard]] std::string pagetypeinfo_text(os::Node& node);
[[nodiscard]] std::string smaps_text(os::Node& node, const os::Process& proc);
/// Module/daemon stats: /proc/hpmmap analog (empty string when the
/// module is not loaded), khugepaged and hugetlb pool counters.
[[nodiscard]] std::string hpmmap_text(os::Node& node);

/// The whole procfs view of a node: every file above plus smaps for
/// every live process, concatenated with `==> path <==` headers (the
/// `tail -n +1 /proc/*` idiom).
[[nodiscard]] std::string procfs_dump(os::Node& node);

} // namespace hpmmap::introspect
