// Counter / histogram registry companion to the flight recorder.
//
// Tracepoints record *events*; metrics record *aggregates* that survive
// ring-buffer overwrites: monotonically increasing counters and
// streaming histograms with p50/p95/p99 (P² estimators — event volume
// rules out retaining samples). String keys must be literals; lookups
// are by content, so dotted hierarchical names ("fault.cycles.small")
// group naturally in reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/stats.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::trace {

/// Streaming distribution summary: Welford moments + P² percentile
/// markers. O(1) memory per histogram regardless of event volume.
class Histogram {
 public:
  Histogram() : p50_(0.50), p95_(0.95), p99_(0.99) {}

  void add(double x) noexcept {
    stats_.add(x);
    p50_.add(x);
    p95_.add(x);
    p99_.add(x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double stdev() const noexcept { return stats_.stdev(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }
  [[nodiscard]] double p50() const noexcept { return p50_.value(); }
  [[nodiscard]] double p95() const noexcept { return p95_.value(); }
  [[nodiscard]] double p99() const noexcept { return p99_.value(); }

 private:
  friend struct hpmmap::snapshot::Access;

  RunningStats stats_;
  P2Quantile p50_;
  P2Quantile p95_;
  P2Quantile p99_;
};

/// Registry of named counters and histograms. Not thread-safe (the
/// simulation is single-threaded by construction).
class MetricRegistry {
 public:
  /// Monotonic counter; created on first use.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  /// Streaming histogram; created on first use.
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  void reset() noexcept {
    counters_.clear();
    histograms_.clear();
  }

  /// Human-readable multi-line report (counters, then histograms with
  /// count/mean/p50/p95/p99/max).
  [[nodiscard]] std::string report() const;

 private:
  friend struct hpmmap::snapshot::Access;

  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// This thread's registry (per-run context, like trace::recorder()),
/// reset per experiment run by the harness.
[[nodiscard]] MetricRegistry& metrics() noexcept;

/// Redirect this thread's metrics() to an external registry (per-node
/// cluster contexts; see trace::set_recorder_override). nullptr restores
/// the thread's own registry.
void set_metrics_override(MetricRegistry* m) noexcept;

} // namespace hpmmap::trace
