#include "trace/trace.hpp"

#include <algorithm>

namespace hpmmap::trace {

namespace detail {
thread_local std::uint32_t g_enabled_mask = 0;
thread_local std::uint32_t g_current_span = 0;
thread_local bool g_spans_enabled = false;
} // namespace detail

namespace {

struct Clock {
  ClockFn fn = nullptr;
  const void* ctx = nullptr;
};

// Per-thread, like the rest of the run context: a worker thread's engine
// must not stamp (or clobber) another run's clock.
thread_local Clock g_clock;

constexpr std::array<Category, 12> kAllCategoryList = {
    Category::kFault, Category::kBuddy,  Category::kThp,
    Category::kHugetlb, Category::kModule, Category::kSched,
    Category::kNet,   Category::kApp,    Category::kHarness,
    Category::kVerify, Category::kServer, Category::kLock,
};

} // namespace

std::optional<std::uint32_t> parse_categories(std::string_view csv) {
  std::uint32_t mask = 0;
  while (!csv.empty()) {
    const std::size_t comma = csv.find(',');
    std::string_view tok = csv.substr(0, comma);
    csv = comma == std::string_view::npos ? std::string_view{} : csv.substr(comma + 1);
    if (tok.empty()) {
      continue;
    }
    if (tok == "all") {
      mask |= kAllCategories;
      continue;
    }
    if (tok == "none") {
      continue;
    }
    bool found = false;
    for (Category c : kAllCategoryList) {
      if (tok == name(c)) {
        mask |= static_cast<std::uint32_t>(c);
        found = true;
        break;
      }
    }
    if (!found) {
      return std::nullopt;
    }
  }
  return mask;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void FlightRecorder::set_capacity(std::size_t capacity) {
  capacity_ = std::max<std::size_t>(capacity, 1);
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  dropped_ = 0;
  recorded_ = 0;
}

void FlightRecorder::clear() noexcept {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  recorded_ = 0;
}

void FlightRecorder::push(const Event& e) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  // Full: overwrite the oldest entry and advance the head.
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  // head_ is the oldest entry once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void enable(std::uint32_t mask) noexcept { detail::g_enabled_mask = mask; }
void disable_all() noexcept { detail::g_enabled_mask = 0; }
std::uint32_t enabled_mask() noexcept { return detail::g_enabled_mask; }

void enable_spans(bool on) noexcept {
  detail::g_spans_enabled = on;
  if (!on) {
    detail::g_current_span = 0;
  }
}
bool spans_on() noexcept { return detail::g_spans_enabled; }
std::uint32_t current_span() noexcept { return detail::g_current_span; }

namespace {
thread_local FlightRecorder* g_recorder_override = nullptr;
} // namespace

FlightRecorder& recorder() noexcept {
  static thread_local FlightRecorder r;
  return g_recorder_override != nullptr ? *g_recorder_override : r;
}

void set_recorder_override(FlightRecorder* r) noexcept { g_recorder_override = r; }

void set_clock(ClockFn fn, const void* ctx) noexcept {
  g_clock.fn = fn;
  g_clock.ctx = ctx;
}

void clear_clock(const void* ctx) noexcept {
  if (g_clock.ctx == ctx) {
    g_clock.fn = nullptr;
    g_clock.ctx = nullptr;
  }
}

Cycles clock_now() noexcept { return g_clock.fn != nullptr ? g_clock.fn(g_clock.ctx) : 0; }

void emit(const Event& e) {
  if (!on(e.cat)) {
    return;
  }
  if (e.span == 0 && detail::g_current_span != 0) {
    Event stamped = e;
    stamped.span = detail::g_current_span;
    recorder().push(stamped);
    return;
  }
  recorder().push(e);
}

namespace {

Event make(Category cat, const char* event_name, Cycles ts, Cycles dur, Phase phase, Pid pid,
           std::int32_t core, std::initializer_list<Arg> args) {
  Event e;
  e.ts = ts;
  e.dur = dur;
  e.event_name = event_name;
  e.cat = cat;
  e.phase = phase;
  e.pid = pid;
  e.core = core;
  e.span = detail::g_current_span;
  e.arg_count = static_cast<std::uint8_t>(std::min(args.size(), Event::kMaxArgs));
  std::copy_n(args.begin(), e.arg_count, e.args.begin());
  return e;
}

} // namespace

void complete(Category cat, const char* event_name, Cycles ts, Cycles dur, Pid pid,
              std::int32_t core, std::initializer_list<Arg> args) {
  if (!on(cat)) {
    return;
  }
  recorder().push(make(cat, event_name, ts, dur, Phase::kComplete, pid, core, args));
}

void instant(Category cat, const char* event_name, Pid pid, std::int32_t core,
             std::initializer_list<Arg> args) {
  if (!on(cat)) {
    return;
  }
  recorder().push(make(cat, event_name, clock_now(), 0, Phase::kInstant, pid, core, args));
}

void counter(Category cat, const char* event_name, double value, Pid pid) {
  if (!on(cat)) {
    return;
  }
  recorder().push(make(cat, event_name, clock_now(), 0, Phase::kCounter, pid, -1,
                       {Arg::f64("value", value)}));
}

} // namespace hpmmap::trace
