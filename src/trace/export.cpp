#include "trace/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>

namespace hpmmap::trace {

namespace {

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_arg(std::string& out, const Arg& a) {
  out += '"';
  json_escape(out, a.name != nullptr ? a.name : "?");
  out += "\":";
  char buf[64];
  switch (a.kind) {
    case Arg::Kind::kU64:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, a.value.u64);
      out += buf;
      break;
    case Arg::Kind::kF64:
      std::snprintf(buf, sizeof(buf), "%.17g", a.value.f64);
      out += buf;
      break;
    case Arg::Kind::kStr:
      out += '"';
      json_escape(out, a.value.str != nullptr ? a.value.str : "");
      out += '"';
      break;
    case Arg::Kind::kNone:
      out += "null";
      break;
  }
}

} // namespace

std::string chrome_json(const std::vector<Event>& events, const ExportOptions& opts) {
  const double us_per_cycle = 1e6 / opts.clock_hz;
  std::string out;
  out.reserve(events.size() * 128 + 16);
  out += "[\n";
  bool first = true;
  char buf[128];
  // Spans already flow-started, so each span's first event gets ph "s"
  // and later ones ph "t" (Perfetto draws the connecting arrows).
  std::set<std::uint32_t> flows_started;
  for (const Event& e : events) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    const Cycles rel = e.ts >= opts.t0 ? e.ts - opts.t0 : 0;
    const double ts_us = static_cast<double>(rel) * us_per_cycle;
    out += "{\"name\":\"";
    json_escape(out, e.name());
    out += "\",\"cat\":\"";
    json_escape(out, name(e.cat));
    std::snprintf(buf, sizeof(buf), "\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":%u,\"tid\":%d",
                  static_cast<char>(e.phase), ts_us, static_cast<unsigned>(e.pid),
                  e.core >= 0 ? e.core : -1);
    out += buf;
    if (e.phase == Phase::kComplete) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", static_cast<double>(e.dur) * us_per_cycle);
      out += buf;
    }
    if (e.phase == Phase::kInstant) {
      out += ",\"s\":\"t\""; // thread-scoped instant
    }
    out += ",\"args\":{";
    for (std::uint8_t i = 0; i < e.arg_count; ++i) {
      if (i != 0) {
        out += ',';
      }
      append_json_arg(out, e.args[i]);
    }
    if (e.span != 0) {
      if (e.arg_count != 0) {
        out += ',';
      }
      std::snprintf(buf, sizeof(buf), "\"span\":%u", e.span);
      out += buf;
    }
    out += "}}";
    if (e.span != 0) {
      // Companion flow record linking this event into its span's chain.
      const bool start = flows_started.insert(e.span).second;
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"span\",\"cat\":\"span\",\"ph\":\"%c\",\"id\":%u,"
                    "\"ts\":%.3f,\"pid\":%u,\"tid\":%d}",
                    start ? 's' : 't', e.span, ts_us, static_cast<unsigned>(e.pid),
                    e.core >= 0 ? e.core : -1);
      out += buf;
    }
  }
  out += "\n]\n";
  return out;
}

bool write_chrome_json(const std::string& path, const std::vector<Event>& events,
                       const ExportOptions& opts) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  const std::string body = chrome_json(events, opts);
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return f.good();
}

namespace {

constexpr std::string_view kCsvHeader = "ts_cycles,dur_cycles,phase,category,name,pid,core,args\n";

void append_csv_row(std::string& out, Cycles ts, Cycles dur, char phase, std::string_view category,
                    std::string_view event_name, Pid pid, std::int32_t core,
                    std::string_view args) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ",%" PRIu64 ",%c,", ts, dur, phase);
  out += buf;
  out += category;
  out += ',';
  out += event_name;
  std::snprintf(buf, sizeof(buf), ",%u,%d,", static_cast<unsigned>(pid), core);
  out += buf;
  out += args;
  out += '\n';
}

} // namespace

std::string csv(const std::vector<Event>& events) {
  std::string out{kCsvHeader};
  out.reserve(out.size() + events.size() * 96);
  char buf[64];
  for (const Event& e : events) {
    std::string args;
    for (std::uint8_t i = 0; i < e.arg_count; ++i) {
      const Arg& a = e.args[i];
      if (i != 0) {
        args += '|';
      }
      args += a.name != nullptr ? a.name : "?";
      switch (a.kind) {
        case Arg::Kind::kU64:
          std::snprintf(buf, sizeof(buf), ":u=%" PRIu64, a.value.u64);
          args += buf;
          break;
        case Arg::Kind::kF64:
          std::snprintf(buf, sizeof(buf), ":f=%.17g", a.value.f64);
          args += buf;
          break;
        case Arg::Kind::kStr:
          args += ":s=";
          args += a.value.str != nullptr ? a.value.str : "";
          break;
        case Arg::Kind::kNone:
          args += ":s=";
          break;
      }
    }
    if (e.span != 0) {
      if (!args.empty()) {
        args += '|';
      }
      std::snprintf(buf, sizeof(buf), "span:u=%u", e.span);
      args += buf;
    }
    append_csv_row(out, e.ts, e.dur, static_cast<char>(e.phase), name(e.cat), e.name(), e.pid,
                   e.core, args);
  }
  return out;
}

std::string csv(const std::vector<CsvEvent>& events) {
  std::string out{kCsvHeader};
  for (const CsvEvent& e : events) {
    std::string args;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i != 0) {
        args += '|';
      }
      args += e.args[i].name;
      args += ':';
      args += e.args[i].kind;
      args += '=';
      args += e.args[i].value;
    }
    append_csv_row(out, e.ts, e.dur, e.phase, e.category, e.name, e.pid, e.core, args);
  }
  return out;
}

bool write_csv(const std::string& path, const std::vector<Event>& events) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  const std::string body = csv(events);
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return f.good();
}

std::vector<CsvEvent> parse_csv(std::string_view text) {
  std::vector<CsvEvent> out;
  bool header = true;
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{} : text.substr(nl + 1);
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    // Split on the first 7 commas; the args field is the remainder (it
    // never contains commas by construction).
    std::array<std::string_view, 8> field{};
    std::size_t nfields = 0;
    while (nfields < 7) {
      const std::size_t comma = line.find(',');
      if (comma == std::string_view::npos) {
        break;
      }
      field[nfields++] = line.substr(0, comma);
      line = line.substr(comma + 1);
    }
    if (nfields < 7) {
      continue; // malformed row
    }
    field[7] = line;

    CsvEvent e;
    e.ts = static_cast<Cycles>(std::strtoull(std::string(field[0]).c_str(), nullptr, 10));
    e.dur = static_cast<Cycles>(std::strtoull(std::string(field[1]).c_str(), nullptr, 10));
    e.phase = field[2].empty() ? 'i' : field[2][0];
    e.category = std::string(field[3]);
    e.name = std::string(field[4]);
    e.pid = static_cast<Pid>(std::strtoul(std::string(field[5]).c_str(), nullptr, 10));
    e.core = static_cast<std::int32_t>(std::strtol(std::string(field[6]).c_str(), nullptr, 10));

    std::string_view args = field[7];
    while (!args.empty()) {
      const std::size_t bar = args.find('|');
      std::string_view tok = args.substr(0, bar);
      args = bar == std::string_view::npos ? std::string_view{} : args.substr(bar + 1);
      const std::size_t colon = tok.find(':');
      if (colon == std::string_view::npos || colon + 2 >= tok.size() || tok[colon + 2] != '=') {
        continue; // malformed arg
      }
      CsvEvent::Arg a;
      a.name = std::string(tok.substr(0, colon));
      a.kind = tok[colon + 1];
      a.value = std::string(tok.substr(colon + 3));
      e.args.push_back(std::move(a));
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::uint32_t span_of(const CsvEvent& e) {
  for (const CsvEvent::Arg& a : e.args) {
    if (a.kind == 'u' && a.name == "span") {
      return static_cast<std::uint32_t>(std::strtoul(a.value.c_str(), nullptr, 10));
    }
  }
  return 0;
}

std::string describe(const Event& e) {
  std::string out;
  char buf[96];
  out += e.name();
  std::snprintf(buf, sizeof(buf), " cat=%.*s ts=%" PRIu64 " dur=%" PRIu64 " pid=%u core=%d",
                static_cast<int>(name(e.cat).size()), name(e.cat).data(), e.ts, e.dur,
                static_cast<unsigned>(e.pid), e.core);
  out += buf;
  if (e.span != 0) {
    std::snprintf(buf, sizeof(buf), " span=%u", e.span);
    out += buf;
  }
  for (std::uint8_t i = 0; i < e.arg_count; ++i) {
    const Arg& a = e.args[i];
    out += ' ';
    out += a.name != nullptr ? a.name : "?";
    switch (a.kind) {
      case Arg::Kind::kU64:
        std::snprintf(buf, sizeof(buf), "=%" PRIu64, a.value.u64);
        out += buf;
        break;
      case Arg::Kind::kF64:
        std::snprintf(buf, sizeof(buf), "=%.17g", a.value.f64);
        out += buf;
        break;
      case Arg::Kind::kStr:
        out += '=';
        out += a.value.str != nullptr ? a.value.str : "";
        break;
      case Arg::Kind::kNone:
        out += "=?";
        break;
    }
  }
  return out;
}

} // namespace hpmmap::trace
