#include "trace/metrics.hpp"

#include <cstdio>

namespace hpmmap::trace {

namespace {
thread_local MetricRegistry* g_metrics_override = nullptr;
} // namespace

MetricRegistry& metrics() noexcept {
  static thread_local MetricRegistry r;
  return g_metrics_override != nullptr ? *g_metrics_override : r;
}

void set_metrics_override(MetricRegistry* m) noexcept { g_metrics_override = m; }

std::string MetricRegistry::report() const {
  std::string out;
  char line[256];
  if (!counters_.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters_) {
      std::snprintf(line, sizeof(line), "  %-32s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
    }
  }
  if (!histograms_.empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : histograms_) {
      std::snprintf(line, sizeof(line),
                    "  %-32s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
                    name.c_str(), static_cast<unsigned long long>(h.count()), h.mean(), h.p50(),
                    h.p95(), h.p99(), h.max());
      out += line;
    }
  }
  return out;
}

} // namespace hpmmap::trace
