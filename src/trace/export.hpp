// Trace exporters: Chrome trace-event JSON (loads directly in Perfetto
// or chrome://tracing, with events on per-core tracks) and a flat CSV
// for scripted analysis. CSV parses back losslessly so traces can
// round-trip through text tooling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace hpmmap::trace {

struct ExportOptions {
  /// Virtual clock rate used to convert cycles to the microsecond
  /// timestamps the Chrome trace format expects.
  double clock_hz = 2.3e9;
  /// Cycle count subtracted from every timestamp (experiment start).
  Cycles t0 = 0;
};

/// Chrome trace-event JSON: a plain array of event objects, each with
/// ts (µs) / ph / name / cat / pid / tid / args. tid is the core so
/// Perfetto lays events out on per-core tracks; core -1 events land on
/// a synthetic track per pid.
///
/// Events carrying a causal span (span != 0) additionally get a `span`
/// arg plus Perfetto flow records (`ph:"s"` on the span's first event,
/// `ph:"t"` steps after) with id = span, so a request's path across
/// engine actors renders as connected arrows. Span-free events emit
/// exactly the pre-span byte stream.
[[nodiscard]] std::string chrome_json(const std::vector<Event>& events,
                                      const ExportOptions& opts = {});

/// Write chrome_json() to a file; returns false on I/O failure.
bool write_chrome_json(const std::string& path, const std::vector<Event>& events,
                       const ExportOptions& opts = {});

/// CSV with header `ts_cycles,dur_cycles,phase,category,name,pid,core,args`.
/// Args serialize as `name:u=123|name:f=1.5|name:s=text`. A nonzero
/// causal span rides as a trailing `span:u=N` arg token (absent when
/// span == 0, so spans-off output is byte-identical to pre-span builds).
[[nodiscard]] std::string csv(const std::vector<Event>& events);

bool write_csv(const std::string& path, const std::vector<Event>& events);

/// An event parsed back from CSV. Strings are owned (the zero-copy
/// literal contract of Event does not survive text).
struct CsvEvent {
  Cycles ts = 0;
  Cycles dur = 0;
  char phase = 'i';
  std::string category;
  std::string name;
  Pid pid = 0;
  std::int32_t core = -1;
  struct Arg {
    std::string name;
    char kind = 'u'; // 'u' | 'f' | 's'
    std::string value;
  };
  std::vector<Arg> args;
};

/// Parse csv() output back into structured events (header row skipped).
[[nodiscard]] std::vector<CsvEvent> parse_csv(std::string_view text);

/// Re-serialize parsed events; `csv(parse_csv(csv(ev)))` is a fixpoint.
[[nodiscard]] std::string csv(const std::vector<CsvEvent>& events);

/// Causal span of a parsed event (the `span:u=N` arg token); 0 if none.
[[nodiscard]] std::uint32_t span_of(const CsvEvent& e);

/// One-line human rendering of an event for diagnostics and anomaly
/// dumps: `name cat=... ts=... dur=... pid=... core=... [span=N] args...`.
/// Includes the causal span when present so flight-recorder dumps can
/// name the victim request, not just the raw tracepoint.
[[nodiscard]] std::string describe(const Event& e);

} // namespace hpmmap::trace
