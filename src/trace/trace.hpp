// Kernel-style tracepoints and a flight recorder for the simulated
// memory-management stack.
//
// The paper argues from *per-event* evidence (Figures 2-5 are per-fault
// cost breakdowns and scatter plots); this subsystem is the single
// mechanistic event stream those figures — and any future profiling —
// are derived from. The design follows the kernel's tracepoint +
// static_key idiom:
//
//   - call sites are guarded by `trace::on(Category)`, one relaxed load
//     and a predictable branch when tracing is off (plus a compile-time
//     kill switch, HPMMAP_TRACE_OFF, that folds every site to nothing);
//   - enabled events land in a bounded ring buffer (flight recorder):
//     overwrite-oldest with a drop counter, never unbounded growth;
//   - timestamps are virtual cycles read through a clock hook the
//     simulation engine registers, so producers (buddy allocator,
//     hugetlb pool, scheduler) need no engine reference.
//
// Exporters (Chrome trace-event JSON for Perfetto/chrome://tracing, and
// CSV) live in trace/export.hpp; counters/histograms in trace/metrics.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace hpmmap::snapshot {
struct Access;
}

namespace hpmmap::trace {

/// Per-subsystem enable bits. Kept in one 32-bit mask so the hot-path
/// check is a single AND.
enum class Category : std::uint32_t {
  kFault   = 1u << 0, // demand-paging fault handler spans
  kBuddy   = 1u << 1, // buddy split/merge, reclaim, compaction, swap
  kThp     = 1u << 2, // khugepaged scans and merges
  kHugetlb = 1u << 3, // hugetlbfs pool events
  kModule  = 1u << 4, // HPMMAP module lifecycle and backing
  kSched   = 1u << 5, // scheduler thread add/remove/weight
  kNet     = 1u << 6, // cluster interconnect barriers
  kApp     = 1u << 7, // workload rank lifecycle
  kHarness = 1u << 8, // experiment bracketing
  kVerify  = 1u << 9, // invariant audits and fault injection
  kServer  = 1u << 10, // serving: request lifecycle, admission, shedding
  kLock    = 1u << 11, // SMP lock waits: mmap_sem, PT shards, zone locks, IPIs
};

inline constexpr std::uint32_t kAllCategories = 0xfff;

[[nodiscard]] constexpr std::string_view name(Category c) noexcept {
  switch (c) {
    case Category::kFault:   return "fault";
    case Category::kBuddy:   return "buddy";
    case Category::kThp:     return "thp";
    case Category::kHugetlb: return "hugetlb";
    case Category::kModule:  return "module";
    case Category::kSched:   return "sched";
    case Category::kNet:     return "net";
    case Category::kApp:     return "app";
    case Category::kHarness: return "harness";
    case Category::kVerify:  return "verify";
    case Category::kServer:  return "server";
    case Category::kLock:    return "lock";
  }
  return "?";
}

/// Parse "fault,buddy,thp" / "all" / "none" into a category mask.
/// nullopt on an unknown category name.
[[nodiscard]] std::optional<std::uint32_t> parse_categories(std::string_view csv);

/// One typed event argument. Names and string values must be string
/// literals (or otherwise outlive the recorder) — the kernel tracepoint
/// contract; events never own heap memory.
struct Arg {
  enum class Kind : std::uint8_t { kNone, kU64, kF64, kStr };

  const char* name = nullptr;
  Kind kind = Kind::kNone;
  union Value {
    std::uint64_t u64;
    double f64;
    const char* str;
  } value{};

  [[nodiscard]] static constexpr Arg u64(const char* n, std::uint64_t v) noexcept {
    Arg a;
    a.name = n;
    a.kind = Kind::kU64;
    a.value.u64 = v;
    return a;
  }
  [[nodiscard]] static constexpr Arg f64(const char* n, double v) noexcept {
    Arg a;
    a.name = n;
    a.kind = Kind::kF64;
    a.value.f64 = v;
    return a;
  }
  [[nodiscard]] static constexpr Arg str(const char* n, const char* v) noexcept {
    Arg a;
    a.name = n;
    a.kind = Kind::kStr;
    a.value.str = v;
    return a;
  }
};

/// Chrome trace-event phases we emit. kComplete carries a duration;
/// kInstant and kCounter are points in time.
enum class Phase : char { kComplete = 'X', kInstant = 'i', kCounter = 'C' };

/// A single trace event. Fixed size, trivially copyable; `name` must be
/// a string literal.
struct Event {
  static constexpr std::size_t kMaxArgs = 4;

  Cycles ts = 0;   // virtual-cycle timestamp
  Cycles dur = 0;  // kComplete only
  const char* event_name = nullptr;
  Category cat = Category::kHarness;
  Phase phase = Phase::kInstant;
  Pid pid = 0;            // owning process, 0 = kernel/daemon context
  std::int32_t core = -1; // per-core track; -1 = unpinned/unknown
  /// Causal span: id of the request/actor on whose behalf this event
  /// happened, stamped ambiently by emit() from the active SpanScope.
  /// 0 = no span (exporters omit the field, keeping spans-off output
  /// byte-identical to pre-span builds).
  std::uint32_t span = 0;
  std::uint8_t arg_count = 0;
  std::array<Arg, kMaxArgs> args{};

  [[nodiscard]] std::string_view name() const noexcept {
    return event_name != nullptr ? std::string_view{event_name} : std::string_view{};
  }
};

/// Bounded ring buffer of events: overwrite-oldest with a drop counter.
/// Storage grows lazily up to `capacity` so an idle recorder costs
/// nothing.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Change capacity; clears the buffer and counters.
  void set_capacity(std::size_t capacity);
  void clear() noexcept;

  void push(const Event& e);

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Events ever pushed (retained + dropped).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }

  /// Retained events, oldest first (push order).
  [[nodiscard]] std::vector<Event> snapshot() const;

 private:
  friend struct hpmmap::snapshot::Access;

  std::vector<Event> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0; // next overwrite position once full
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
};

namespace detail {
/// Per-thread category mask, read inline on every tracepoint. Thread-
/// local because the whole trace registry is a *per-run context*: the
/// batch runner executes independent simulations on worker threads, and
/// each run binds the recorder/metrics/clock of the thread it runs on
/// (see DESIGN.md §8). Single-threaded use is unchanged.
extern thread_local std::uint32_t g_enabled_mask;
/// Span tracking, same per-run thread_local discipline. g_current_span
/// is the id stamped on every emitted event while a SpanScope is live;
/// g_spans_enabled gates stamping so span tracing off means every event
/// carries span 0 and exporter output is byte-identical.
extern thread_local std::uint32_t g_current_span;
extern thread_local bool g_spans_enabled;
} // namespace detail

/// The tracepoint guard: one load + AND. Callers wrap argument
/// construction in `if (trace::on(cat))` so disabled tracepoints cost a
/// predictable not-taken branch.
[[nodiscard]] inline bool on(Category c) noexcept {
#ifdef HPMMAP_TRACE_OFF
  (void)c;
  return false;
#else
  return (detail::g_enabled_mask & static_cast<std::uint32_t>(c)) != 0;
#endif
}

/// Enable exactly the categories in `mask` (0 disables everything).
void enable(std::uint32_t mask) noexcept;
void disable_all() noexcept;
[[nodiscard]] std::uint32_t enabled_mask() noexcept;

/// Enable/disable causal span stamping for this run context. Off (the
/// default) every event carries span 0, which exporters render exactly
/// as before spans existed — the pure-observer contract (DESIGN.md §15).
void enable_spans(bool on) noexcept;
[[nodiscard]] bool spans_on() noexcept;
/// The span emit() would stamp right now (0 = none active).
[[nodiscard]] std::uint32_t current_span() noexcept;

/// RAII causal-span context. The serving layer opens one per request
/// callback (span = request index + 1), SmpStorm one per fault actor, so
/// every tracepoint fired underneath — fault handler, SmpDomain lock
/// waits, pcp refills, shootdown IPI rounds — is attributed to the
/// request/actor that suffered it. Nests: the inner scope wins, the
/// outer is restored on destruction. A no-op while spans are disabled.
class SpanScope {
 public:
  explicit SpanScope(std::uint32_t span) noexcept : prev_(detail::g_current_span) {
    if (detail::g_spans_enabled) {
      detail::g_current_span = span;
    }
  }
  ~SpanScope() { detail::g_current_span = prev_; }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  std::uint32_t prev_;
};

/// This thread's flight recorder (one per run context; the harness
/// brackets each run, so a worker thread's recorder holds exactly the
/// events of the run executing on it).
[[nodiscard]] FlightRecorder& recorder() noexcept;

/// Point this thread's recorder() at an external ring instead of the
/// thread's own. The PDES cluster harness keeps one recorder per node
/// engine and installs it around each engine's execution slice, so a
/// group's events land in the same ring no matter which worker thread
/// runs the slice. nullptr restores the thread's own recorder.
void set_recorder_override(FlightRecorder* r) noexcept;

/// Virtual clock hook, one registration per thread. The simulation
/// engine registers itself at construction; producers without an engine
/// reference (buddy, pools, scheduler) stamp events through this.
/// Returns 0 with no clock. Two engines on different threads never see
/// each other's registration.
using ClockFn = Cycles (*)(const void* ctx);
void set_clock(ClockFn fn, const void* ctx) noexcept;
/// Unregister, but only if `ctx` is still the active clock (a dying
/// engine must not yank a successor's registration).
void clear_clock(const void* ctx) noexcept;
[[nodiscard]] Cycles clock_now() noexcept;

// --- emission helpers -----------------------------------------------------
// All re-check `on(cat)` so an unguarded call while disabled is a no-op;
// hot paths still guard explicitly to skip argument setup.

void emit(const Event& e);
void complete(Category cat, const char* event_name, Cycles ts, Cycles dur, Pid pid,
              std::int32_t core, std::initializer_list<Arg> args = {});
/// Instant at the current virtual time.
void instant(Category cat, const char* event_name, Pid pid, std::int32_t core,
             std::initializer_list<Arg> args = {});
/// Counter sample at the current virtual time.
void counter(Category cat, const char* event_name, double value, Pid pid = 0);

} // namespace hpmmap::trace
