// Multi-node scaling scenario (the paper's §IV-C testbed in miniature):
// an 8-node 1 GbE cluster where every node also runs a kernel build.
//
//   $ ./build/examples/scaling_study [app]
//
// Demonstrates noise amplification: per-node memory-management jitter
// compounds through the per-iteration barrier, so the HPMMAP-vs-THP gap
// *grows* with node count even though per-node contention is constant.
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hpmmap;

  const std::string app = argc > 1 ? argv[1] : "HPCCG";
  std::printf("Scaling study: %s, 4 ranks/node over 1GbE, profile C per node\n\n", app.c_str());

  harness::Table table({"Nodes", "Ranks", "Manager", "Runtime (s)", "Stdev (s)"});
  for (const std::uint32_t nodes : {1u, 2u, 4u}) {
    for (const harness::Manager manager :
         {harness::Manager::kThp, harness::Manager::kHpmmap}) {
      harness::ScalingRunConfig cfg;
      cfg.app = app;
      cfg.manager = manager;
      cfg.commodity = workloads::profile_c();
      cfg.nodes = nodes;
      cfg.ranks_per_node = 4;
      cfg.seed = 11;
      cfg.footprint_scale = 0.25;
      cfg.duration_scale = 0.2;
      const harness::SeriesPoint p = harness::run_trials(cfg, 3);
      table.add_row({std::to_string(nodes), std::to_string(nodes * 4),
                     std::string(name(manager)), harness::fixed(p.mean_seconds, 2),
                     harness::fixed(p.stdev_seconds, 2)});
    }
  }
  table.print();
  return 0;
}
