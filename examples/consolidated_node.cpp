// Consolidated-node scenario: the situation the paper's introduction
// motivates — an HPC application sharing a node with progressively more
// commodity work (in-situ analytics, cloud co-tenants).
//
//   $ ./build/examples/consolidated_node
//
// Sweeps the competing kernel-build intensity from none to profile B and
// shows how each memory manager's runtime and variance respond. The
// takeaway mirrors §IV-B: Linux degrades and grows noisy; HPMMAP's
// isolation keeps both the mean and the spread nearly flat.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main() {
  using namespace hpmmap;

  constexpr std::uint32_t kCores = 4;
  constexpr std::uint32_t kTrials = 3;
  std::printf("Consolidation sweep: HPCCG on %u cores vs growing commodity load\n\n", kCores);

  struct Level {
    const char* label;
    workloads::CommodityProfile profile;
  };
  const Level levels[] = {
      {"idle node", workloads::no_competition()},
      {"1 kernel build (profile A)", workloads::profile_a(kCores)},
      {"2 kernel builds (profile B)", workloads::profile_b(kCores)},
  };

  harness::Table table({"Competing load", "Manager", "Runtime (s)", "Stdev (s)"});
  for (const Level& level : levels) {
    for (const harness::Manager manager :
         {harness::Manager::kThp, harness::Manager::kHugetlbfs, harness::Manager::kHpmmap}) {
      harness::SingleNodeRunConfig cfg;
      cfg.app = "HPCCG";
      cfg.manager = manager;
      cfg.commodity = level.profile;
      cfg.app_cores = kCores;
      cfg.seed = 7;
      cfg.footprint_scale = 0.25;
      cfg.duration_scale = 0.2;
      const harness::SeriesPoint p = harness::run_trials(cfg, kTrials);
      table.add_row({level.label, std::string(name(manager)),
                     harness::fixed(p.mean_seconds, 2), harness::fixed(p.stdev_seconds, 2)});
    }
  }
  table.print();
  return 0;
}
