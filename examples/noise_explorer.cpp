// Noise explorer: watch the THP merge mechanism do its damage.
//
//   $ ./build/examples/noise_explorer
//
// Runs miniMD under THP with a competing build, records every fault, and
// prints the worst fault latencies with their classification — the
// textual version of the paper's Figure 4 scatter plot. Merge-blocked
// faults (khugepaged holding the page-table lock) dominate the tail.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main() {
  using namespace hpmmap;

  harness::SingleNodeRunConfig cfg;
  cfg.app = "miniMD";
  cfg.manager = harness::Manager::kThp;
  cfg.commodity = workloads::profile_a(4);
  cfg.app_cores = 4;
  cfg.seed = 99;
  cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault);
  cfg.footprint_scale = 0.25;
  cfg.duration_scale = 0.2;

  std::printf("Tracing every page fault of miniMD under THP + kernel build...\n\n");
  const harness::RunResult r = harness::run_single_node(cfg);

  std::vector<harness::FaultSample> worst = harness::app_fault_samples(r);
  std::sort(worst.begin(), worst.end(),
            [](const harness::FaultSample& a, const harness::FaultSample& b) {
              return a.cost > b.cost;
            });
  if (worst.size() > 15) {
    worst.resize(15);
  }

  harness::Table table({"t (s into run)", "Kind", "Cost (cycles)"});
  const double hz = r.clock_hz;
  for (const harness::FaultSample& rec : worst) {
    table.add_row({harness::fixed(static_cast<double>(rec.when - r.trace_t0) / hz, 3),
                   std::string(name(rec.kind)), harness::with_commas(rec.cost)});
  }
  table.print();

  std::printf("\nkhugepaged completed %llu merges during the run; each one held the\n"
              "process page-table lock and stalled every fault that arrived meanwhile.\n",
              static_cast<unsigned long long>(r.thp_merges));
  return 0;
}
