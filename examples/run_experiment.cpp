// General experiment driver: run any paper configuration from the
// command line without writing C++.
//
//   run_experiment --app miniFE --manager hpmmap --profile B --cores 8
//                  --trials 5 [--nodes 4] [--scale 0.5] [--duration 0.2]
//                  [--seed 42] [--jobs N] [--perf-summary]
//                  [--trace] [--trace-out FILE] [--trace-cat CATS]
//
// With --nodes > 1 the run uses the Sandia 1 GbE cluster model
// (profiles C/D); otherwise the Dell R415 single-node model
// (profiles A/B or "none").
//
// --trace-out writes the run's flight-recorder contents as Chrome
// trace-event JSON (open in https://ui.perfetto.dev or chrome://tracing)
// plus a FILE.csv twin, and prints the counter/histogram report.
//
// --sample-interval/--metrics-out add engine-driven telemetry sampling:
// OpenMetrics text + CSV twin on disk, and Perfetto counter tracks
// spliced into the --trace-out JSON when both are given. --procfs-dump
// prints the kernel-style /proc view of every node at run end.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "introspect/export.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "verify/fault_inject.hpp"

namespace {

using namespace hpmmap;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --app NAME       HPCCG | CoMD | miniMD | miniFE | LAMMPS   (default HPCCG)\n"
      "  --manager M      thp | hugetlbfs | hpmmap                  (default hpmmap)\n"
      "  --profile P      none | A | B (single node) | C | D (cluster) (default A)\n"
      "  --cores N        app cores on the single node              (default 8)\n"
      "  --nodes N        cluster nodes; >1 selects the 1GbE testbed (default 1)\n"
      "  --trials N       repetitions with derived seeds            (default 3)\n"
      "  --scale F        footprint scale                           (default 1.0)\n"
      "  --duration F     iteration-count scale                     (default 0.1)\n"
      "  --seed N         base RNG seed                             (default 42)\n"
      "  --jobs N         worker threads for the trial loop; 0 = all hardware\n"
      "                   threads (default 0; results identical for any value)\n"
      "  --perf-summary   append simulator throughput after the run: engine\n"
      "                   events/sec, mm faults/sec, per-kind mm cycle totals,\n"
      "                   and (when tracing) the mm counters from the metrics\n"
      "                   registry\n"
      "  --trace          record the fault trace and print a summary\n"
      "  --trace-out FILE write Chrome trace JSON to FILE and CSV to FILE.csv;\n"
      "                   with sampling on, telemetry counter tracks are spliced\n"
      "                   into the JSON as Perfetto counters\n"
      "  --trace-cat CATS categories for --trace-out: comma list or 'all'\n"
      "                   (fault,buddy,thp,hugetlb,module,sched,net,app,harness,verify)\n"
      "  --sample-interval N  sample mm telemetry every N virtual cycles\n"
      "                   (0 = off; sampling never perturbs results)\n"
      "  --metrics-out FILE   write sampled telemetry as OpenMetrics text to\n"
      "                   FILE plus a FILE.csv twin (implies a 50M-cycle\n"
      "                   interval if --sample-interval is unset); trial runs\n"
      "                   merge with trial=\"N\" labels, byte-identical for\n"
      "                   any --jobs value\n"
      "  --procfs-dump    print /proc-style snapshots (buddyinfo, meminfo,\n"
      "                   vmstat, pagetypeinfo, per-process smaps, hpmmap) at\n"
      "                   run end\n"
      "  --audit          run the mm invariant auditor at run end and print its report\n"
      "  --audit-on-fire  with --inject: also audit at every injection instant\n"
      "  --inject SPEC    arm fault injection; SPEC is comma-separated entries\n"
      "                   point[@N][+P][xC][~F][*M]: @N = Nth call, +P = every P\n"
      "                   calls after, xC = at most C fires, ~F = probability per\n"
      "                   call, *M = magnitude (net_delay multiplier). Points:\n"
      "                   buddy_alloc, direct_reclaim, thp_huge_alloc,\n"
      "                   thp_merge_abort, hugetlb_alloc, net_delay.\n"
      "                   e.g. --inject thp_huge_alloc@100+50x20,net_delay~0.02*16\n",
      argv0);
  std::exit(0);
}

harness::Manager parse_manager(const std::string& s) {
  if (s == "thp") {
    return harness::Manager::kThp;
  }
  if (s == "hugetlbfs") {
    return harness::Manager::kHugetlbfs;
  }
  if (s == "hpmmap") {
    return harness::Manager::kHpmmap;
  }
  std::fprintf(stderr, "unknown manager '%s'\n", s.c_str());
  std::exit(1);
}

/// Export one traced run: Perfetto-loadable JSON (with telemetry counter
/// tracks when the run sampled), CSV twin, metric report.
void dump_trace(const harness::RunResult& r, const std::string& path) {
  trace::ExportOptions eopt;
  eopt.clock_hz = r.clock_hz;
  eopt.t0 = r.trace_t0;
  if (!introspect::write_chrome_json_with_counters(path, r.events, r.telemetry, eopt)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
  if (!trace::write_csv(path + ".csv", r.events)) {
    std::fprintf(stderr, "failed to write %s.csv\n", path.c_str());
    std::exit(1);
  }
  std::printf("trace: %zu events -> %s (+.csv); %llu overwritten in the ring\n",
              r.events.size(), path.c_str(),
              static_cast<unsigned long long>(r.trace_dropped));
  std::printf("%s", trace::metrics().report().c_str());
}

/// Write the telemetry exports: OpenMetrics text plus a CSV twin. t0 and
/// clock come from the run (trials of one config share both).
void write_metrics(const std::vector<introspect::TimeSeries>& series,
                   const std::string& path, double clock_hz, hpmmap::Cycles t0) {
  if (path.empty()) {
    return;
  }
  trace::ExportOptions eopt;
  eopt.clock_hz = clock_hz;
  eopt.t0 = t0;
  if (!introspect::write_openmetrics(path, series, eopt) ||
      !introspect::write_telemetry_csv(path + ".csv", series, eopt)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
  std::uint64_t samples = 0;
  for (const introspect::TimeSeries& s : series) {
    samples += s.points.size();
  }
  std::printf("telemetry: %zu series, %llu samples -> %s (+.csv)\n", series.size(),
              static_cast<unsigned long long>(samples), path.c_str());
}

/// Introspection output for a single (traced/verified) run.
void report_introspection(const harness::RunResult& r, const std::string& metrics_out,
                          bool procfs) {
  write_metrics(r.telemetry, metrics_out, r.clock_hz, r.trace_t0);
  if (procfs) {
    std::printf("%s", r.procfs_text.c_str());
  }
}

/// Print what a verified run observed: per-point injector counters and
/// the auditor's verdict.
void report_verification(const harness::RunResult& r, bool injected, bool audited) {
  if (injected) {
    harness::Table t({"Injection point", "Calls", "Fired"});
    for (std::size_t i = 0; i < verify::kInjectPointCount; ++i) {
      const auto p = static_cast<verify::InjectPoint>(i);
      t.add_row({std::string(verify::name(p)),
                 harness::with_commas(r.injected[i].calls),
                 harness::with_commas(r.injected[i].fired)});
    }
    t.print();
    std::printf("injected faults: %llu; thp 4K fallbacks: %llu; merges aborted: "
                "%llu; hugetlb exhaustions: %llu\n",
                static_cast<unsigned long long>(r.injected_total()),
                static_cast<unsigned long long>(r.thp_fault_fallbacks),
                static_cast<unsigned long long>(r.thp_merges_aborted),
                static_cast<unsigned long long>(r.hugetlb_pool_exhausted));
  }
  if (audited) {
    std::printf("%s", r.audit_report.c_str());
    if (!r.audit_report.empty() && r.audit_report.back() != '\n') {
      std::printf("\n");
    }
  }
}

/// Wall-clock scope for --perf-summary: prints host-side throughput
/// (simulator events and mm faults per wall second) plus the per-kind mm
/// cycle accounting when it goes out of scope.
class PerfSummary {
 public:
  explicit PerfSummary(bool enabled) : enabled_(enabled) {}
  void add_events(std::uint64_t n) noexcept { events_ += n; }
  void add_faults(const mm::FaultStats& f) noexcept {
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      fault_counts_[k] += f.count[k];
      fault_cycles_[k] += f.total_cycles[k];
    }
  }
  void add_series(const harness::SeriesPoint& p) noexcept {
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      fault_counts_[k] += p.fault_counts[k];
      fault_cycles_[k] += p.fault_cycles[k];
    }
  }
  ~PerfSummary() {
    if (!enabled_) {
      return;
    }
    const auto wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    std::printf("perf: %llu engine events in %.3f s wall = %.3g events/sec "
                "(%u jobs)\n",
                static_cast<unsigned long long>(events_), wall,
                wall > 0 ? static_cast<double>(events_) / wall : 0.0,
                harness::default_jobs());
    std::uint64_t faults = 0;
    for (const std::uint64_t n : fault_counts_) {
      faults += n;
    }
    if (faults > 0) {
      std::printf("perf: %llu mm faults = %.3g faults/sec wall; mm cycles by kind:",
                  static_cast<unsigned long long>(faults),
                  wall > 0 ? static_cast<double>(faults) / wall : 0.0);
      for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
        if (fault_counts_[k] == 0) {
          continue;
        }
        std::printf(" %s %s", std::string(mm::name(static_cast<mm::FaultKind>(k))).c_str(),
                    harness::with_commas(fault_cycles_[k]).c_str());
      }
      std::printf("\n");
    }
    // Traced runs leave the run's mm counters in the metrics registry;
    // surface the per-subsystem accounting next to the throughput line.
    const auto& counters = trace::metrics().counters();
    bool any = false;
    for (const auto& [key, value] : counters) {
      for (const std::string_view prefix :
           {"buddy.", "mm.", "thp.", "khugepaged.", "hugetlb.", "fault.", "hpmmap."}) {
        if (key.rfind(prefix, 0) == 0) {
          std::printf("%s  %s = %s", any ? "" : "perf: mm subsystem counters:\n",
                      key.c_str(), harness::with_commas(value).c_str());
          std::printf("\n");
          any = true;
          break;
        }
      }
    }
  }
  PerfSummary(const PerfSummary&) = delete;
  PerfSummary& operator=(const PerfSummary&) = delete;

 private:
  bool enabled_;
  std::uint64_t events_ = 0;
  std::array<std::uint64_t, mm::kFaultKindCount> fault_counts_{};
  std::array<std::uint64_t, mm::kFaultKindCount> fault_cycles_{};
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

/// Trials with introspection on run per-config through run_batch (same
/// seed derivation as run_trials, same submission-order merge) so the
/// exported telemetry is byte-identical for any --jobs value.
template <typename Config>
int run_introspected_trials(const Config& cfg, std::uint32_t trials, unsigned jobs,
                            const std::string& metrics_out, bool procfs,
                            PerfSummary& perf) {
  std::vector<Config> cfgs;
  for (const std::uint64_t s : harness::trial_seeds(cfg.seed, trials)) {
    cfgs.push_back(cfg);
    cfgs.back().seed = s;
  }
  const std::vector<harness::RunResult> runs = harness::run_batch(cfgs, jobs);
  RunningStats stats;
  for (const harness::RunResult& r : runs) {
    stats.add(r.runtime_seconds);
    perf.add_events(r.events_fired);
    perf.add_faults(r.faults);
  }
  std::printf("runtime: %.2f s  (stdev %.2f)\n", stats.mean(), stats.stdev());
  write_metrics(harness::merged_telemetry(runs), metrics_out, runs.front().clock_hz,
                runs.front().trace_t0);
  if (procfs) {
    // The /proc view of trial 0 (each trial tears its node down; later
    // trials differ only by seed).
    std::printf("%s", runs.front().procfs_text.c_str());
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  std::string app = "HPCCG", manager = "hpmmap", profile = "A";
  std::uint32_t cores = 8, nodes = 1, trials = 3;
  unsigned jobs = 0;
  double scale = 1.0, duration = 0.1;
  std::uint64_t seed = 42;
  bool trace = false;
  bool perf_summary = false;
  std::string trace_out;
  std::string trace_cat = "all";
  bool audit = false, audit_on_fire = false;
  std::string inject_spec;
  std::uint64_t sample_interval = 0;
  std::string metrics_out;
  bool procfs_dump = false;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--app")) {
      app = next();
    } else if (!std::strcmp(argv[i], "--manager")) {
      manager = next();
    } else if (!std::strcmp(argv[i], "--profile")) {
      profile = next();
    } else if (!std::strcmp(argv[i], "--cores")) {
      cores = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      nodes = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--trials")) {
      trials = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = std::atof(next());
    } else if (!std::strcmp(argv[i], "--duration")) {
      duration = std::atof(next());
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "--jobs")) {
      jobs = static_cast<unsigned>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--perf-summary")) {
      perf_summary = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
    } else if (!std::strcmp(argv[i], "--trace-out")) {
      trace_out = next();
    } else if (!std::strcmp(argv[i], "--trace-cat")) {
      trace_cat = next();
    } else if (!std::strcmp(argv[i], "--audit")) {
      audit = true;
    } else if (!std::strcmp(argv[i], "--audit-on-fire")) {
      audit_on_fire = true;
    } else if (!std::strcmp(argv[i], "--inject")) {
      inject_spec = next();
    } else if (!std::strcmp(argv[i], "--sample-interval")) {
      sample_interval = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "--metrics-out")) {
      metrics_out = next();
    } else if (!std::strcmp(argv[i], "--procfs-dump")) {
      procfs_dump = true;
    } else {
      usage(argv[0]);
    }
  }

  using namespace hpmmap;
  harness::set_default_jobs(jobs);
  PerfSummary perf(perf_summary);
  const harness::Manager mgr = parse_manager(manager);

  harness::VerifyConfig verify_cfg;
  verify_cfg.audit = audit;
  verify_cfg.audit_on_injection = audit_on_fire;
  if (!inject_spec.empty()) {
    const auto plan = verify::parse_inject_spec(inject_spec);
    if (!plan) {
      std::fprintf(stderr, "bad --inject spec '%s'\n", inject_spec.c_str());
      return 1;
    }
    verify_cfg.inject = *plan;
  }
  const bool verifying = audit || verify_cfg.inject.any();

  harness::IntrospectConfig introspect_cfg;
  if (!metrics_out.empty() && sample_interval == 0) {
    sample_interval = 50'000'000; // ~23 ms of virtual time on the R415
  }
  introspect_cfg.sample_interval = sample_interval;
  introspect_cfg.procfs_dump = procfs_dump;
  const bool introspecting = introspect_cfg.sampling() || procfs_dump;

  harness::TraceConfig trace_cfg;
  if (!trace_out.empty()) {
    const auto mask = trace::parse_categories(trace_cat);
    if (!mask) {
      std::fprintf(stderr, "unknown trace category in '%s'\n", trace_cat.c_str());
      return 1;
    }
    trace_cfg.categories = *mask;
  } else if (trace) {
    trace_cfg.categories = static_cast<std::uint32_t>(trace::Category::kFault);
  }

  if (nodes > 1) {
    harness::ScalingRunConfig cfg;
    cfg.app = app;
    cfg.manager = mgr;
    cfg.commodity = profile == "D"      ? workloads::profile_d()
                    : profile == "none" ? workloads::no_competition()
                                        : workloads::profile_c();
    cfg.nodes = nodes;
    cfg.seed = seed;
    cfg.trace = trace_cfg;
    cfg.footprint_scale = scale;
    cfg.duration_scale = duration;
    cfg.verify = verify_cfg;
    cfg.introspect = introspect_cfg;
    std::printf("%s on %u nodes (%u ranks), %s, profile %s, %u trials\n", app.c_str(), nodes,
                nodes * cfg.ranks_per_node, name(mgr).data(), cfg.commodity.name.c_str(),
                trials);
    if (!trace_out.empty() || verifying) {
      const harness::RunResult r = harness::run_scaling(cfg);
      perf.add_events(r.events_fired);
      perf.add_faults(r.faults);
      std::printf("runtime: %.2f s\n", r.runtime_seconds);
      report_verification(r, verify_cfg.inject.any(), audit);
      report_introspection(r, metrics_out, procfs_dump);
      if (!trace_out.empty()) {
        dump_trace(r, trace_out);
      }
      return r.audit_violations == 0 ? 0 : 1;
    }
    if (introspecting || !metrics_out.empty()) {
      return run_introspected_trials(cfg, trials, jobs, metrics_out, procfs_dump, perf);
    }
    const harness::SeriesPoint p = harness::run_trials(cfg, trials);
    perf.add_events(p.events);
    perf.add_series(p);
    std::printf("runtime: %.2f s  (stdev %.2f)\n", p.mean_seconds, p.stdev_seconds);
    return 0;
  }

  harness::SingleNodeRunConfig cfg;
  cfg.app = app;
  cfg.manager = mgr;
  cfg.commodity = profile == "A"      ? workloads::profile_a(cores)
                  : profile == "B"    ? workloads::profile_b(cores)
                                      : workloads::no_competition();
  cfg.app_cores = cores;
  cfg.seed = seed;
  cfg.trace = trace_cfg;
  cfg.footprint_scale = scale;
  cfg.duration_scale = duration;
  cfg.verify = verify_cfg;
  cfg.introspect = introspect_cfg;
  std::printf("%s on %u cores, %s, profile %s, %u trials\n", app.c_str(), cores,
              name(mgr).data(), cfg.commodity.name.c_str(), trials);

  if (cfg.trace.on() || verifying) {
    const harness::RunResult r = harness::run_single_node(cfg);
    perf.add_events(r.events_fired);
    perf.add_faults(r.faults);
    std::printf("runtime: %.2f s\n", r.runtime_seconds);
    if (cfg.trace.on()) {
      harness::Table t({"Kind", "Count", "Avg cycles", "Stdev cycles"});
      for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
        const auto kind = static_cast<mm::FaultKind>(k);
        const auto& row = r.by_kind(kind);
        t.add_row({std::string(mm::name(kind)), harness::with_commas(row.total_faults),
                   harness::with_commas(static_cast<std::uint64_t>(row.avg_cycles)),
                   harness::with_commas(static_cast<std::uint64_t>(row.stdev_cycles))});
      }
      t.print();
      std::printf("khugepaged merges: %llu\n",
                  static_cast<unsigned long long>(r.thp_merges));
    }
    report_verification(r, verify_cfg.inject.any(), audit);
    report_introspection(r, metrics_out, procfs_dump);
    if (!trace_out.empty()) {
      dump_trace(r, trace_out);
    }
    return r.audit_violations == 0 ? 0 : 1;
  }
  if (introspecting || !metrics_out.empty()) {
    return run_introspected_trials(cfg, trials, jobs, metrics_out, procfs_dump, perf);
  }
  const harness::SeriesPoint p = harness::run_trials(cfg, trials);
  perf.add_events(p.events);
  perf.add_series(p);
  std::printf("runtime: %.2f s  (stdev %.2f)\n", p.mean_seconds, p.stdev_seconds);
  return 0;
}
