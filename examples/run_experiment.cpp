// General experiment driver: run any paper configuration from the
// command line without writing C++.
//
//   run_experiment --app miniFE --manager hpmmap --profile B --cores 8
//                  --trials 5 [--nodes 4] [--scale 0.5] [--duration 0.2]
//                  [--seed 42] [--jobs N] [--perf-summary]
//                  [--trace] [--trace-out FILE] [--trace-cat CATS]
//
// With --nodes > 1 the run uses the Sandia 1 GbE cluster model
// (profiles C/D); otherwise the Dell R415 single-node model
// (profiles A/B or "none").
//
// --trace-out writes the run's flight-recorder contents as Chrome
// trace-event JSON (open in https://ui.perfetto.dev or chrome://tracing)
// plus a FILE.csv twin, and prints the counter/histogram report.
//
// --sample-interval/--metrics-out add engine-driven telemetry sampling:
// OpenMetrics text + CSV twin on disk, and Perfetto counter tracks
// spliced into the --trace-out JSON when both are given. --procfs-dump
// prints the kernel-style /proc view of every node at run end.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "cluster/network.hpp"
#include "harness/batch.hpp"
#include "harness/cluster.hpp"
#include "hw/machine.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "introspect/export.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "verify/fault_inject.hpp"

namespace {

using namespace hpmmap;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --experiment E   hpc | server | smp                        (default hpc)\n"
      "                   server: open-loop request/response service with\n"
      "                   tail-latency SLO accounting (see --rate/--shape/--slo)\n"
      "                   smp: per-core fault-storm on one node (DESIGN.md §14);\n"
      "                   --cores sets the storm width, --trace records the\n"
      "                   lock/fault stream mmprof folds into contention stacks\n"
      "  --smp-variant V  smp: 1999 | today | hpmmap                (default today)\n"
      "  --app NAME       HPCCG | CoMD | miniMD | miniFE | LAMMPS   (default HPCCG)\n"
      "  --manager M      thp | hugetlbfs | hpmmap                  (default hpmmap)\n"
      "  --profile P      none | A | B (single node) | C | D (cluster) (default A)\n"
      "  --cores N        app cores on the single node              (default 8)\n"
      "  --nodes N        cluster nodes; >1 selects the 1GbE testbed (default 1)\n"
      "  --cluster-jobs N run cluster nodes on per-node event engines (PDES)\n"
      "                   driven by N worker threads; 0 = all hardware threads.\n"
      "                   Results are byte-identical for any N, and the\n"
      "                   runtime/fault tables match the shared-engine path\n"
      "  --topology T     interconnect for the cluster collectives:\n"
      "                   flat | tree | fat-tree (default flat; flat reproduces\n"
      "                   the paper's single-switch model, tree needs a\n"
      "                   power-of-two node count)\n"
      "  --trials N       repetitions with derived seeds            (default 3)\n"
      "  --scale F        footprint scale                           (default 1.0)\n"
      "  --duration F     iteration-count scale                     (default 0.1)\n"
      "  --seed N         base RNG seed                             (default 42)\n"
      "  --rate RPS       server: mean request rate                 (default 2000)\n"
      "  --shape S        server: poisson | bursty | diurnal        (default poisson)\n"
      "  --workers N      server: worker processes (= cores)        (default 4)\n"
      "  --queue-depth N  server: admission queue capacity          (default 64)\n"
      "  --slo MS[,MS..]  server: latency budgets in milliseconds   (default 2,10)\n"
      "  --jobs N         worker threads for the trial loop; 0 = all hardware\n"
      "                   threads (default 0; results identical for any value)\n"
      "  --perf-summary   append simulator throughput after the run: engine\n"
      "                   events/sec, mm faults/sec, per-kind mm cycle totals,\n"
      "                   and (when tracing) the mm counters from the metrics\n"
      "                   registry\n"
      "  --trace          record the fault trace and print a summary\n"
      "  --trace-out FILE write Chrome trace JSON to FILE and CSV to FILE.csv;\n"
      "                   with sampling on, telemetry counter tracks are spliced\n"
      "                   into the JSON as Perfetto counters\n"
      "  --trace-cat CATS categories for --trace-out: comma list or 'all'\n"
      "                   (fault,buddy,thp,hugetlb,module,sched,net,app,harness,\n"
      "                   verify,server,lock)\n"
      "  --spans          stamp causal span ids (request/actor) on traced events;\n"
      "                   spans show up as a span:u= arg in the CSV, an args.span\n"
      "                   field plus flow links in the Perfetto JSON, and feed\n"
      "                   mmprof's blocked-by attribution. Pure observer: every\n"
      "                   other output is byte-identical with spans off\n"
      "  --attr-out FILE  server: record the per-request latency decomposition\n"
      "                   (queue/slab/fault/lock-class/IPI/miss/compute/stretch),\n"
      "                   print the attribution report and write the per-request\n"
      "                   CSV to FILE for mmprof --attr. Buckets sum exactly to\n"
      "                   each request's measured latency on the virtual clock\n"
      "  --sample-interval N  sample mm telemetry every N virtual cycles\n"
      "                   (0 = off; sampling never perturbs results)\n"
      "  --metrics-out FILE   write sampled telemetry as OpenMetrics text to\n"
      "                   FILE plus a FILE.csv twin (implies a 50M-cycle\n"
      "                   interval if --sample-interval is unset); trial runs\n"
      "                   merge with trial=\"N\" labels, byte-identical for\n"
      "                   any --jobs value\n"
      "  --procfs-dump    print /proc-style snapshots (buddyinfo, meminfo,\n"
      "                   vmstat, pagetypeinfo, per-process smaps, hpmmap) at\n"
      "                   run end\n"
      "  --snapshot-out FILE  (single node) boot and age the configured world,\n"
      "                   capture it at the warmup quiesce point and write the\n"
      "                   image to FILE without running the measurement phase\n"
      "  --snapshot-in FILE   (single node) skip aging: restore FILE and run one\n"
      "                   measurement phase from it. The config must match the\n"
      "                   capturing one except --app/--cores/--duration; the\n"
      "                   result is byte-identical to the straight run\n"
      "  --audit          run the mm invariant auditor at run end and print its report\n"
      "  --audit-on-fire  with --inject: also audit at every injection instant\n"
      "  --inject SPEC    arm fault injection; SPEC is comma-separated entries\n"
      "                   point[@N][+P][xC][~F][*M]: @N = Nth call, +P = every P\n"
      "                   calls after, xC = at most C fires, ~F = probability per\n"
      "                   call, *M = magnitude (net_delay multiplier). Points:\n"
      "                   buddy_alloc, direct_reclaim, thp_huge_alloc,\n"
      "                   thp_merge_abort, hugetlb_alloc, net_delay.\n"
      "                   e.g. --inject thp_huge_alloc@100+50x20,net_delay~0.02*16\n",
      argv0);
  std::exit(0);
}

harness::Manager parse_manager(const std::string& s) {
  if (s == "thp") {
    return harness::Manager::kThp;
  }
  if (s == "hugetlbfs") {
    return harness::Manager::kHugetlbfs;
  }
  if (s == "hpmmap") {
    return harness::Manager::kHpmmap;
  }
  std::fprintf(stderr, "unknown manager '%s'\n", s.c_str());
  std::exit(1);
}

/// Export one traced run: Perfetto-loadable JSON (with telemetry counter
/// tracks when the run sampled), CSV twin, metric report. Templated so
/// serving runs (ServerRunResult) export identically.
template <typename R>
void dump_trace(const R& r, const std::string& path) {
  trace::ExportOptions eopt;
  eopt.clock_hz = r.clock_hz;
  eopt.t0 = r.trace_t0;
  if (!introspect::write_chrome_json_with_counters(path, r.events, r.telemetry, eopt)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
  if (!trace::write_csv(path + ".csv", r.events)) {
    std::fprintf(stderr, "failed to write %s.csv\n", path.c_str());
    std::exit(1);
  }
  std::printf("trace: %zu events -> %s (+.csv); %llu overwritten in the ring\n",
              r.events.size(), path.c_str(),
              static_cast<unsigned long long>(r.trace_dropped));
  std::printf("%s", trace::metrics().report().c_str());
}

/// Write the telemetry exports: OpenMetrics text plus a CSV twin. t0 and
/// clock come from the run (trials of one config share both).
void write_metrics(const std::vector<introspect::TimeSeries>& series,
                   const std::string& path, double clock_hz, hpmmap::Cycles t0) {
  if (path.empty()) {
    return;
  }
  trace::ExportOptions eopt;
  eopt.clock_hz = clock_hz;
  eopt.t0 = t0;
  if (!introspect::write_openmetrics(path, series, eopt) ||
      !introspect::write_telemetry_csv(path + ".csv", series, eopt)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
  std::uint64_t samples = 0;
  for (const introspect::TimeSeries& s : series) {
    samples += s.points.size();
  }
  std::printf("telemetry: %zu series, %llu samples -> %s (+.csv)\n", series.size(),
              static_cast<unsigned long long>(samples), path.c_str());
}

/// Introspection output for a single (traced/verified) run.
template <typename R>
void report_introspection(const R& r, const std::string& metrics_out,
                          bool procfs) {
  write_metrics(r.telemetry, metrics_out, r.clock_hz, r.trace_t0);
  if (procfs) {
    std::printf("%s", r.procfs_text.c_str());
  }
}

/// Print what a verified run observed: per-point injector counters and
/// the auditor's verdict.
void report_verification(const harness::RunResult& r, bool injected, bool audited) {
  if (injected) {
    harness::Table t({"Injection point", "Calls", "Fired"});
    for (std::size_t i = 0; i < verify::kInjectPointCount; ++i) {
      const auto p = static_cast<verify::InjectPoint>(i);
      t.add_row({std::string(verify::name(p)),
                 harness::with_commas(r.injected[i].calls),
                 harness::with_commas(r.injected[i].fired)});
    }
    t.print();
    std::printf("injected faults: %llu; thp 4K fallbacks: %llu; merges aborted: "
                "%llu; hugetlb exhaustions: %llu\n",
                static_cast<unsigned long long>(r.injected_total()),
                static_cast<unsigned long long>(r.thp_fault_fallbacks),
                static_cast<unsigned long long>(r.thp_merges_aborted),
                static_cast<unsigned long long>(r.hugetlb_pool_exhausted));
  }
  if (audited) {
    std::printf("%s", r.audit_report.c_str());
    if (!r.audit_report.empty() && r.audit_report.back() != '\n') {
      std::printf("\n");
    }
  }
}

/// Wall-clock scope for --perf-summary: prints host-side throughput
/// (simulator events and mm faults per wall second) plus the per-kind mm
/// cycle accounting when it goes out of scope.
class PerfSummary {
 public:
  explicit PerfSummary(bool enabled) : enabled_(enabled) {}
  void add_events(std::uint64_t n) noexcept { events_ += n; }
  void add_faults(const mm::FaultStats& f) noexcept {
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      fault_counts_[k] += f.count[k];
      fault_cycles_[k] += f.total_cycles[k];
    }
  }
  void add_series(const harness::SeriesPoint& p) noexcept {
    for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
      fault_counts_[k] += p.fault_counts[k];
      fault_cycles_[k] += p.fault_cycles[k];
    }
  }
  ~PerfSummary() {
    if (!enabled_) {
      return;
    }
    const auto wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    std::printf("perf: %llu engine events in %.3f s wall = %.3g events/sec "
                "(%u jobs)\n",
                static_cast<unsigned long long>(events_), wall,
                wall > 0 ? static_cast<double>(events_) / wall : 0.0,
                harness::default_jobs());
    std::uint64_t faults = 0;
    for (const std::uint64_t n : fault_counts_) {
      faults += n;
    }
    if (faults > 0) {
      std::printf("perf: %llu mm faults = %.3g faults/sec wall; mm cycles by kind:",
                  static_cast<unsigned long long>(faults),
                  wall > 0 ? static_cast<double>(faults) / wall : 0.0);
      for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
        if (fault_counts_[k] == 0) {
          continue;
        }
        std::printf(" %s %s", std::string(mm::name(static_cast<mm::FaultKind>(k))).c_str(),
                    harness::with_commas(fault_cycles_[k]).c_str());
      }
      std::printf("\n");
    }
    // Traced runs leave the run's mm counters in the metrics registry;
    // surface the per-subsystem accounting next to the throughput line.
    const auto& counters = trace::metrics().counters();
    bool any = false;
    for (const auto& [key, value] : counters) {
      for (const std::string_view prefix :
           {"buddy.", "mm.", "thp.", "khugepaged.", "hugetlb.", "fault.", "hpmmap."}) {
        if (key.rfind(prefix, 0) == 0) {
          std::printf("%s  %s = %s", any ? "" : "perf: mm subsystem counters:\n",
                      key.c_str(), harness::with_commas(value).c_str());
          std::printf("\n");
          any = true;
          break;
        }
      }
    }
  }
  PerfSummary(const PerfSummary&) = delete;
  PerfSummary& operator=(const PerfSummary&) = delete;

 private:
  bool enabled_;
  std::uint64_t events_ = 0;
  std::array<std::uint64_t, mm::kFaultKindCount> fault_counts_{};
  std::array<std::uint64_t, mm::kFaultKindCount> fault_cycles_{};
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

/// Trials with introspection on run per-config through run_batch (same
/// seed derivation as run_trials, same submission-order merge) so the
/// exported telemetry is byte-identical for any --jobs value.
template <typename Config>
int run_introspected_trials(const Config& cfg, std::uint32_t trials, unsigned jobs,
                            const std::string& metrics_out, bool procfs,
                            PerfSummary& perf) {
  std::vector<Config> cfgs;
  for (const std::uint64_t s : harness::trial_seeds(cfg.seed, trials)) {
    cfgs.push_back(cfg);
    cfgs.back().seed = s;
  }
  const std::vector<harness::RunResult> runs = harness::run_batch(cfgs, jobs);
  RunningStats stats;
  for (const harness::RunResult& r : runs) {
    stats.add(r.runtime_seconds);
    perf.add_events(r.events_fired);
    perf.add_faults(r.faults);
  }
  std::printf("runtime: %.2f s  (stdev %.2f)\n", stats.mean(), stats.stdev());
  write_metrics(harness::merged_telemetry(runs), metrics_out, runs.front().clock_hz,
                runs.front().trace_t0);
  if (procfs) {
    // The /proc view of trial 0 (each trial tears its node down; later
    // trials differ only by seed).
    std::printf("%s", runs.front().procfs_text.c_str());
  }
  return 0;
}

/// Parse "--slo 2,10" (milliseconds) into cycle budgets on the R415
/// clock. Empty result on a malformed spec.
std::vector<serving::SloBudget> parse_slo_spec(const std::string& spec, double clock_hz) {
  std::vector<serving::SloBudget> budgets;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string part = spec.substr(pos, comma - pos);
    char* end = nullptr;
    const double ms = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0' || ms <= 0.0) {
      return {};
    }
    serving::SloBudget b;
    b.label = "lat<" + part + "ms";
    b.budget = static_cast<hpmmap::Cycles>(ms * 1e-3 * clock_hz);
    budgets.push_back(std::move(b));
    pos = comma + 1;
  }
  return budgets;
}

/// The serving experiment: per-trial tail/SLO table plus totals. All
/// output derives from run_server_trials' submission-order results, so
/// it is byte-identical for any --jobs value.
int run_server_mode(const harness::ServerRunConfig& cfg, std::uint32_t trials,
                    unsigned jobs, const std::string& trace_out,
                    const std::string& metrics_out, const std::string& attr_out,
                    bool procfs_dump, bool audit, PerfSummary& perf) {
  const bool single = !trace_out.empty() || procfs_dump;
  const std::vector<harness::ServerRunResult> runs =
      single ? std::vector<harness::ServerRunResult>{harness::run_server(cfg)}
             : harness::run_server_trials(cfg, trials, jobs);

  harness::Table t({"Trial", "Completed", "Shed", "p50 us", "p95 us", "p99 us",
                    "p99.9 us", "SLO violations"});
  std::uint64_t total_violations = 0, total_shed = 0, total_completed = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const harness::ServerRunResult& r = runs[i];
    perf.add_events(r.events_fired);
    perf.add_faults(r.faults);
    total_violations += r.slo_total;
    total_shed += r.server.shed_queue + r.server.shed_timeout;
    total_completed += r.server.completed;
    t.add_row({std::to_string(i), harness::with_commas(r.server.completed),
               harness::with_commas(r.server.shed_queue + r.server.shed_timeout),
               std::to_string(static_cast<std::uint64_t>(r.tail.p50_us)),
               std::to_string(static_cast<std::uint64_t>(r.tail.p95_us)),
               std::to_string(static_cast<std::uint64_t>(r.tail.p99_us)),
               std::to_string(static_cast<std::uint64_t>(r.tail.p999_us)),
               harness::with_commas(r.slo_total)});
  }
  t.print();
  for (const harness::SloOutcome& o : runs.front().slo) {
    std::uint64_t v = 0;
    for (const harness::ServerRunResult& r : runs) {
      for (const harness::SloOutcome& ro : r.slo) {
        if (ro.label == o.label) {
          v += ro.violations;
        }
      }
    }
    std::printf("slo %s: %s violations across %zu trial(s)\n", o.label.c_str(),
                harness::with_commas(v).c_str(), runs.size());
  }
  std::printf("total: %s completed, %s shed, %s SLO violations\n",
              harness::with_commas(total_completed).c_str(),
              harness::with_commas(total_shed).c_str(),
              harness::with_commas(total_violations).c_str());
  const harness::ServerRunResult& first = runs.front();
  std::printf("cache: %s hits / %s misses; slab: %s allocs (%s recycled), %s chunks\n",
              harness::with_commas(first.server.cache_hits).c_str(),
              harness::with_commas(first.server.cache_misses).c_str(),
              harness::with_commas(first.server.slab.objects_allocated).c_str(),
              harness::with_commas(first.server.slab.objects_recycled).c_str(),
              harness::with_commas(first.server.slab.chunks_mapped).c_str());
  if (audit) {
    std::printf("%s", first.audit_report.c_str());
    if (!first.audit_report.empty() && first.audit_report.back() != '\n') {
      std::printf("\n");
    }
  }
  report_introspection(first, metrics_out, procfs_dump);
  if (!trace_out.empty()) {
    dump_trace(first, trace_out);
  }
  if (!attr_out.empty()) {
    // Trial 0's decomposition (later trials differ only by seed); the
    // CSV round-trips through mmprof --attr.
    std::printf("%s", profile::render_report(first.attribution, first.clock_hz).c_str());
    const std::string csv = profile::attr_csv(first.attribution.requests);
    if (std::FILE* f = std::fopen(attr_out.c_str(), "w")) {
      std::fputs(csv.c_str(), f);
      std::fclose(f);
      std::printf("attribution: %llu request records -> %s\n",
                  static_cast<unsigned long long>(first.attribution.completed),
                  attr_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", attr_out.c_str());
      return 1;
    }
    if (first.attribution.residual_errors != 0) {
      std::fprintf(stderr, "FAIL: %llu requests with a nonzero decomposition residual\n",
                   static_cast<unsigned long long>(first.attribution.residual_errors));
      return 1;
    }
  }
  std::uint64_t audit_violations = 0;
  for (const harness::ServerRunResult& r : runs) {
    audit_violations += r.audit_violations;
  }
  return audit_violations == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  std::string app = "HPCCG", manager = "hpmmap", profile = "A";
  std::uint32_t cores = 8, nodes = 1, trials = 3;
  int cluster_jobs = -1; // -1 = shared-engine path; >= 0 = PDES workers
  std::string topology = "flat";
  unsigned jobs = 0;
  double scale = 1.0, duration = 0.1;
  std::uint64_t seed = 42;
  bool trace = false;
  bool perf_summary = false;
  bool spans = false;
  std::string trace_out;
  std::string trace_cat = "all";
  std::string attr_out;
  bool audit = false, audit_on_fire = false;
  std::string inject_spec;
  std::uint64_t sample_interval = 0;
  std::string metrics_out;
  bool procfs_dump = false;
  std::string snapshot_out, snapshot_in;
  std::string experiment = "hpc";
  std::string smp_variant = "today";
  double rate = 2000.0;
  std::string shape = "poisson";
  std::uint32_t workers = 4, queue_depth = 64;
  std::string slo_spec = "2,10";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--app")) {
      app = next();
    } else if (!std::strcmp(argv[i], "--experiment")) {
      experiment = next();
    } else if (!std::strcmp(argv[i], "--smp-variant")) {
      smp_variant = next();
    } else if (!std::strcmp(argv[i], "--rate")) {
      rate = std::atof(next());
    } else if (!std::strcmp(argv[i], "--shape")) {
      shape = next();
    } else if (!std::strcmp(argv[i], "--workers")) {
      workers = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--queue-depth")) {
      queue_depth = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--slo")) {
      slo_spec = next();
    } else if (!std::strcmp(argv[i], "--manager")) {
      manager = next();
    } else if (!std::strcmp(argv[i], "--profile")) {
      profile = next();
    } else if (!std::strcmp(argv[i], "--cores")) {
      cores = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      nodes = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--cluster-jobs")) {
      cluster_jobs = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--topology")) {
      topology = next();
    } else if (!std::strcmp(argv[i], "--trials")) {
      trials = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = std::atof(next());
    } else if (!std::strcmp(argv[i], "--duration")) {
      duration = std::atof(next());
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "--jobs")) {
      jobs = static_cast<unsigned>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--perf-summary")) {
      perf_summary = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
    } else if (!std::strcmp(argv[i], "--trace-out")) {
      trace_out = next();
    } else if (!std::strcmp(argv[i], "--trace-cat")) {
      trace_cat = next();
    } else if (!std::strcmp(argv[i], "--spans")) {
      spans = true;
    } else if (!std::strcmp(argv[i], "--attr-out")) {
      attr_out = next();
    } else if (!std::strcmp(argv[i], "--audit")) {
      audit = true;
    } else if (!std::strcmp(argv[i], "--audit-on-fire")) {
      audit_on_fire = true;
    } else if (!std::strcmp(argv[i], "--inject")) {
      inject_spec = next();
    } else if (!std::strcmp(argv[i], "--sample-interval")) {
      sample_interval = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "--metrics-out")) {
      metrics_out = next();
    } else if (!std::strcmp(argv[i], "--procfs-dump")) {
      procfs_dump = true;
    } else if (!std::strcmp(argv[i], "--snapshot-out")) {
      snapshot_out = next();
    } else if (!std::strcmp(argv[i], "--snapshot-in")) {
      snapshot_in = next();
    } else {
      usage(argv[0]);
    }
  }

  using namespace hpmmap;
  harness::set_default_jobs(jobs);
  PerfSummary perf(perf_summary);
  const harness::Manager mgr = parse_manager(manager);

  harness::VerifyConfig verify_cfg;
  verify_cfg.audit = audit;
  verify_cfg.audit_on_injection = audit_on_fire;
  if (!inject_spec.empty()) {
    const auto plan = verify::parse_inject_spec(inject_spec);
    if (!plan) {
      std::fprintf(stderr, "bad --inject spec '%s'\n", inject_spec.c_str());
      return 1;
    }
    verify_cfg.inject = *plan;
  }
  const bool verifying = audit || verify_cfg.inject.any();

  const std::optional<cluster::Topology> topo = cluster::topology_from_name(topology);
  if (!topo) {
    std::fprintf(stderr, "unknown topology '%s' (known: flat, tree, fat-tree)\n",
                 topology.c_str());
    return 1;
  }
  if (!cluster::topology_supports(*topo, nodes)) {
    std::fprintf(stderr, "topology 'tree' needs a power-of-two node count (got %u)\n",
                 nodes);
    return 1;
  }

  harness::IntrospectConfig introspect_cfg;
  if (!metrics_out.empty() && sample_interval == 0) {
    sample_interval = 50'000'000; // ~23 ms of virtual time on the R415
  }
  introspect_cfg.sample_interval = sample_interval;
  introspect_cfg.procfs_dump = procfs_dump;
  const bool introspecting = introspect_cfg.sampling() || procfs_dump;

  harness::TraceConfig trace_cfg;
  if (!trace_out.empty()) {
    const auto mask = trace::parse_categories(trace_cat);
    if (!mask) {
      std::fprintf(stderr, "unknown trace category in '%s'\n", trace_cat.c_str());
      return 1;
    }
    trace_cfg.categories = *mask;
  } else if (trace) {
    trace_cfg.categories =
        experiment == "server" ? static_cast<std::uint32_t>(trace::Category::kServer)
        : experiment == "smp"  ? (static_cast<std::uint32_t>(trace::Category::kLock) |
                                  static_cast<std::uint32_t>(trace::Category::kFault))
                               : static_cast<std::uint32_t>(trace::Category::kFault);
  }
  trace_cfg.spans = spans;
  if (spans && !trace_cfg.on()) {
    std::fprintf(stderr, "--spans needs tracing on (--trace or --trace-out)\n");
    return 1;
  }
  if (!attr_out.empty() && experiment != "server") {
    std::fprintf(stderr, "--attr-out applies to --experiment server only\n");
    return 1;
  }

  if ((!snapshot_out.empty() || !snapshot_in.empty()) &&
      (experiment != "hpc" || nodes > 1)) {
    std::fprintf(stderr, "--snapshot-out/--snapshot-in support single-node hpc runs only\n");
    return 1;
  }
  if (!snapshot_out.empty() && !snapshot_in.empty()) {
    std::fprintf(stderr, "--snapshot-out and --snapshot-in are mutually exclusive\n");
    return 1;
  }

  if (experiment == "server") {
    harness::ServerRunConfig cfg;
    cfg.manager = mgr;
    cfg.commodity = profile == "A"   ? workloads::profile_a(workers)
                    : profile == "B" ? workloads::profile_b(workers)
                                     : workloads::no_competition();
    cfg.service.workers = workers;
    cfg.service.queue_depth = queue_depth;
    cfg.arrival.mean_rps = rate;
    if (!serving::parse_shape(shape, cfg.arrival.shape)) {
      std::fprintf(stderr, "unknown arrival shape '%s' (poisson|bursty|diurnal)\n",
                   shape.c_str());
      return 1;
    }
    cfg.service.budgets = parse_slo_spec(slo_spec, hw::dell_r415().clock_hz);
    if (cfg.service.budgets.empty()) {
      std::fprintf(stderr, "bad --slo spec '%s' (comma-separated milliseconds)\n",
                   slo_spec.c_str());
      return 1;
    }
    cfg.seed = seed;
    cfg.trace = trace_cfg;
    cfg.duration_scale = duration;
    cfg.verify = verify_cfg;
    cfg.introspect = introspect_cfg;
    cfg.attribution = !attr_out.empty();
    std::printf("server: %s @ %.0f rps, %u workers, %s, profile %s, %u trials\n",
                shape.c_str(), rate, workers, name(mgr).data(),
                cfg.commodity.name.c_str(), trials);
    return run_server_mode(cfg, trials, jobs, trace_out, metrics_out, attr_out,
                           procfs_dump, audit, perf);
  }
  if (experiment == "smp") {
    harness::SmpRunConfig scfg;
    if (smp_variant == "1999") {
      scfg.variant = harness::SmpVariant::kLinux1999;
    } else if (smp_variant == "today") {
      scfg.variant = harness::SmpVariant::kLinuxToday;
    } else if (smp_variant == "hpmmap") {
      scfg.variant = harness::SmpVariant::kHpmmap;
    } else {
      std::fprintf(stderr, "unknown --smp-variant '%s' (1999|today|hpmmap)\n",
                   smp_variant.c_str());
      return 1;
    }
    scfg.cores = cores;
    scfg.seed = seed;
    scfg.trace = trace_cfg;
    scfg.verify = verify_cfg;
    std::printf("smp storm: %s, %u cores\n", name(scfg.variant).data(), cores);
    const harness::SmpRunResult r = harness::run_smp(scfg);
    perf.add_events(r.events_fired);
    perf.add_faults(r.faults);
    std::printf("pages: %s in %.4f s virtual = %.3g faults/sec\n",
                harness::with_commas(r.pages_touched).c_str(), r.seconds, r.faults_per_sec);
    std::printf("lock wait: mmap_sem %s, pt %s, zone %s, ipi %s cycles\n",
                harness::with_commas(r.smp.mmap_sem_wait).c_str(),
                harness::with_commas(r.smp.pt_lock_wait).c_str(),
                harness::with_commas(r.smp.zone_lock_wait).c_str(),
                harness::with_commas(r.smp.ipi_stall).c_str());
    if (!trace_out.empty()) {
      trace::ExportOptions eopt;
      eopt.clock_hz = r.clock_hz;
      eopt.t0 = r.trace_t0;
      if (!trace::write_chrome_json(trace_out, r.events, eopt) ||
          !trace::write_csv(trace_out + ".csv", r.events)) {
        std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
        return 1;
      }
      std::printf("trace: %zu events -> %s (+.csv); %llu overwritten in the ring\n",
                  r.events.size(), trace_out.c_str(),
                  static_cast<unsigned long long>(r.trace_dropped));
      std::printf("%s", trace::metrics().report().c_str());
    }
    return r.audit_violations == 0 ? 0 : 1;
  }
  if (experiment != "hpc") {
    std::fprintf(stderr, "unknown experiment '%s' (hpc|server|smp)\n", experiment.c_str());
    return 1;
  }
  // Validate the app name up front: a typo should print the known list,
  // not surface as an exception out of a worker thread.
  if (!workloads::try_profile_by_name(app, hw::dell_r415().clock_hz)) {
    std::fprintf(stderr, "unknown app '%s' (known: %s)\n", app.c_str(),
                 std::string(workloads::known_profile_names()).c_str());
    return 1;
  }

  if (nodes > 1 || cluster_jobs >= 0) {
    harness::ScalingRunConfig cfg;
    cfg.app = app;
    cfg.manager = mgr;
    cfg.commodity = profile == "D"      ? workloads::profile_d()
                    : profile == "none" ? workloads::no_competition()
                                        : workloads::profile_c();
    cfg.nodes = nodes;
    cfg.seed = seed;
    cfg.trace = trace_cfg;
    cfg.footprint_scale = scale;
    cfg.duration_scale = duration;
    cfg.verify = verify_cfg;
    cfg.introspect = introspect_cfg;
    std::printf("%s on %u nodes (%u ranks), %s, profile %s, %u trials\n", app.c_str(), nodes,
                nodes * cfg.ranks_per_node, name(mgr).data(), cfg.commodity.name.c_str(),
                trials);
    if (cluster_jobs >= 0) {
      harness::ClusterRunConfig ccfg;
      ccfg.scaling = cfg;
      ccfg.topology = *topo;
      ccfg.cluster_jobs = static_cast<unsigned>(cluster_jobs);
      std::printf("pdes: per-node engines, %s topology, %d worker(s)\n",
                  std::string(cluster::name(*topo)).c_str(), cluster_jobs);
      if (!trace_out.empty() || verifying || introspecting || !metrics_out.empty()) {
        const harness::RunResult r = harness::run_cluster(ccfg);
        perf.add_events(r.events_fired);
        perf.add_faults(r.faults);
        std::printf("runtime: %.2f s\n", r.runtime_seconds);
        report_verification(r, verify_cfg.inject.any(), audit);
        report_introspection(r, metrics_out, procfs_dump);
        if (!trace_out.empty()) {
          dump_trace(r, trace_out);
        }
        return r.audit_violations == 0 ? 0 : 1;
      }
      const harness::SeriesPoint p = harness::run_cluster_trials(ccfg, trials);
      perf.add_events(p.events);
      perf.add_series(p);
      std::printf("runtime: %.2f s  (stdev %.2f)\n", p.mean_seconds, p.stdev_seconds);
      return 0;
    }
    if (!trace_out.empty() || verifying) {
      const harness::RunResult r = harness::run_scaling(cfg);
      perf.add_events(r.events_fired);
      perf.add_faults(r.faults);
      std::printf("runtime: %.2f s\n", r.runtime_seconds);
      report_verification(r, verify_cfg.inject.any(), audit);
      report_introspection(r, metrics_out, procfs_dump);
      if (!trace_out.empty()) {
        dump_trace(r, trace_out);
      }
      return r.audit_violations == 0 ? 0 : 1;
    }
    if (introspecting || !metrics_out.empty()) {
      return run_introspected_trials(cfg, trials, jobs, metrics_out, procfs_dump, perf);
    }
    const harness::SeriesPoint p = harness::run_trials(cfg, trials);
    perf.add_events(p.events);
    perf.add_series(p);
    std::printf("runtime: %.2f s  (stdev %.2f)\n", p.mean_seconds, p.stdev_seconds);
    return 0;
  }

  harness::SingleNodeRunConfig cfg;
  cfg.app = app;
  cfg.manager = mgr;
  cfg.commodity = profile == "A"      ? workloads::profile_a(cores)
                  : profile == "B"    ? workloads::profile_b(cores)
                                      : workloads::no_competition();
  cfg.app_cores = cores;
  cfg.seed = seed;
  cfg.trace = trace_cfg;
  cfg.footprint_scale = scale;
  cfg.duration_scale = duration;
  cfg.verify = verify_cfg;
  cfg.introspect = introspect_cfg;
  std::printf("%s on %u cores, %s, profile %s, %u trials\n", app.c_str(), cores,
              name(mgr).data(), cfg.commodity.name.c_str(), trials);

  if (!snapshot_out.empty()) {
    const snapshot::WorldImage image = harness::capture_single_node(cfg);
    snapshot::save(image, snapshot_out);
    std::printf("snapshot: aged world (manager %s, profile %s, seed %llu) -> %s\n",
                name(mgr).data(), cfg.commodity.name.c_str(),
                static_cast<unsigned long long>(seed), snapshot_out.c_str());
    return 0;
  }
  if (cfg.trace.on() || verifying || !snapshot_in.empty()) {
    const harness::RunResult r =
        snapshot_in.empty() ? harness::run_single_node(cfg)
                            : harness::run_single_node(cfg, snapshot::load(snapshot_in));
    perf.add_events(r.events_fired);
    perf.add_faults(r.faults);
    std::printf("runtime: %.2f s\n", r.runtime_seconds);
    if (cfg.trace.on()) {
      harness::Table t({"Kind", "Count", "Avg cycles", "Stdev cycles"});
      for (std::size_t k = 0; k < mm::kFaultKindCount; ++k) {
        const auto kind = static_cast<mm::FaultKind>(k);
        const auto& row = r.by_kind(kind);
        t.add_row({std::string(mm::name(kind)), harness::with_commas(row.total_faults),
                   harness::with_commas(static_cast<std::uint64_t>(row.avg_cycles)),
                   harness::with_commas(static_cast<std::uint64_t>(row.stdev_cycles))});
      }
      t.print();
      std::printf("khugepaged merges: %llu\n",
                  static_cast<unsigned long long>(r.thp_merges));
    }
    report_verification(r, verify_cfg.inject.any(), audit);
    report_introspection(r, metrics_out, procfs_dump);
    if (!trace_out.empty()) {
      dump_trace(r, trace_out);
    }
    return r.audit_violations == 0 ? 0 : 1;
  }
  if (introspecting || !metrics_out.empty()) {
    return run_introspected_trials(cfg, trials, jobs, metrics_out, procfs_dump, perf);
  }
  const harness::SeriesPoint p = harness::run_trials(cfg, trials);
  perf.add_events(p.events);
  perf.add_series(p);
  std::printf("runtime: %.2f s  (stdev %.2f)\n", p.mean_seconds, p.stdev_seconds);
  return 0;
}
