// General experiment driver: run any paper configuration from the
// command line without writing C++.
//
//   run_experiment --app miniFE --manager hpmmap --profile B --cores 8
//                  --trials 5 [--nodes 4] [--scale 0.5] [--duration 0.2]
//                  [--seed 42] [--trace]
//
// With --nodes > 1 the run uses the Sandia 1 GbE cluster model
// (profiles C/D); otherwise the Dell R415 single-node model
// (profiles A/B or "none").
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace hpmmap;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --app NAME       HPCCG | CoMD | miniMD | miniFE | LAMMPS   (default HPCCG)\n"
      "  --manager M      thp | hugetlbfs | hpmmap                  (default hpmmap)\n"
      "  --profile P      none | A | B (single node) | C | D (cluster) (default A)\n"
      "  --cores N        app cores on the single node              (default 8)\n"
      "  --nodes N        cluster nodes; >1 selects the 1GbE testbed (default 1)\n"
      "  --trials N       repetitions with derived seeds            (default 3)\n"
      "  --scale F        footprint scale                           (default 1.0)\n"
      "  --duration F     iteration-count scale                     (default 0.1)\n"
      "  --seed N         base RNG seed                             (default 42)\n"
      "  --trace          record the fault trace and print a summary\n",
      argv0);
  std::exit(0);
}

harness::Manager parse_manager(const std::string& s) {
  if (s == "thp") {
    return harness::Manager::kThp;
  }
  if (s == "hugetlbfs") {
    return harness::Manager::kHugetlbfs;
  }
  if (s == "hpmmap") {
    return harness::Manager::kHpmmap;
  }
  std::fprintf(stderr, "unknown manager '%s'\n", s.c_str());
  std::exit(1);
}

} // namespace

int main(int argc, char** argv) {
  std::string app = "HPCCG", manager = "hpmmap", profile = "A";
  std::uint32_t cores = 8, nodes = 1, trials = 3;
  double scale = 1.0, duration = 0.1;
  std::uint64_t seed = 42;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--app")) {
      app = next();
    } else if (!std::strcmp(argv[i], "--manager")) {
      manager = next();
    } else if (!std::strcmp(argv[i], "--profile")) {
      profile = next();
    } else if (!std::strcmp(argv[i], "--cores")) {
      cores = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      nodes = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--trials")) {
      trials = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = std::atof(next());
    } else if (!std::strcmp(argv[i], "--duration")) {
      duration = std::atof(next());
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
    } else {
      usage(argv[0]);
    }
  }

  using namespace hpmmap;
  const harness::Manager mgr = parse_manager(manager);

  if (nodes > 1) {
    harness::ScalingRunConfig cfg;
    cfg.app = app;
    cfg.manager = mgr;
    cfg.commodity = profile == "D"      ? workloads::profile_d()
                    : profile == "none" ? workloads::no_competition()
                                        : workloads::profile_c();
    cfg.nodes = nodes;
    cfg.seed = seed;
    cfg.footprint_scale = scale;
    cfg.duration_scale = duration;
    std::printf("%s on %u nodes (%u ranks), %s, profile %s, %u trials\n", app.c_str(), nodes,
                nodes * cfg.ranks_per_node, name(mgr).data(), cfg.commodity.name.c_str(),
                trials);
    const harness::SeriesPoint p = harness::run_trials(cfg, trials);
    std::printf("runtime: %.2f s  (stdev %.2f)\n", p.mean_seconds, p.stdev_seconds);
    return 0;
  }

  harness::SingleNodeRunConfig cfg;
  cfg.app = app;
  cfg.manager = mgr;
  cfg.commodity = profile == "A"      ? workloads::profile_a(cores)
                  : profile == "B"    ? workloads::profile_b(cores)
                                      : workloads::no_competition();
  cfg.app_cores = cores;
  cfg.seed = seed;
  cfg.record_trace = trace;
  cfg.footprint_scale = scale;
  cfg.duration_scale = duration;
  std::printf("%s on %u cores, %s, profile %s, %u trials\n", app.c_str(), cores,
              name(mgr).data(), cfg.commodity.name.c_str(), trials);

  if (trace) {
    const harness::RunResult r = harness::run_single_node(cfg);
    std::printf("runtime: %.2f s\n", r.runtime_seconds);
    harness::Table t({"Kind", "Count", "Avg cycles", "Stdev cycles"});
    const char* labels[] = {"Small", "Large", "Merge", "Invalid"};
    for (std::size_t k = 0; k < 4; ++k) {
      t.add_row({labels[k], harness::with_commas(r.by_kind[k].total_faults),
                 harness::with_commas(static_cast<std::uint64_t>(r.by_kind[k].avg_cycles)),
                 harness::with_commas(static_cast<std::uint64_t>(r.by_kind[k].stdev_cycles))});
    }
    t.print();
    std::printf("khugepaged merges: %llu\n",
                static_cast<unsigned long long>(r.thp_merges));
    return 0;
  }
  const harness::SeriesPoint p = harness::run_trials(cfg, trials);
  std::printf("runtime: %.2f s  (stdev %.2f)\n", p.mean_seconds, p.stdev_seconds);
  return 0;
}
