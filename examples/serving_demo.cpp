// Serving demo: a latency-sensitive request service riding out a noisy
// neighbor. A diurnal arrival wave (trough -> peak -> trough) plays
// against each memory manager, and halfway through the window a
// competing kernel build lands on the same node — the moment the paper's
// consolidation story is about. The per-backend SLO summary shows where
// each manager sheds its tail.
//
//   $ ./build/examples/serving_demo [mean_rps]
//
// Unlike `run_experiment --experiment server` (which drives the packaged
// harness), this composes the pieces by hand — engine, node, schedule,
// ServerApp, KernelBuild — so it doubles as a tour of the serving API.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "hw/machine.hpp"
#include "os/node.hpp"
#include "serving/arrival.hpp"
#include "sim/engine.hpp"
#include "workloads/kernel_build.hpp"
#include "workloads/server_app.hpp"

namespace {

using namespace hpmmap;

struct DemoResult {
  workloads::ServerStats server;
  std::vector<harness::SloOutcome> slo;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double build_start_seconds = 0;
};

// Same backing split the harness uses: the serving side gets the
// pool/offline region, the commodity side keeps the rest of the zone.
os::NodeConfig node_for(harness::Manager manager, const hw::MachineSpec& machine) {
  os::NodeConfig cfg;
  cfg.machine = machine;
  cfg.seed = 2014;
  cfg.name = "r415";
  const std::uint64_t pool = 6 * GiB;
  switch (manager) {
    case harness::Manager::kThp:
      cfg.thp_enabled = true;
      break;
    case harness::Manager::kHugetlbfs:
      cfg.thp_enabled = false;
      cfg.hugetlb_pool_per_zone = pool;
      break;
    case harness::Manager::kHpmmap: {
      cfg.thp_enabled = true; // THP still manages the commodity side
      core::ModuleConfig mod;
      mod.offline_bytes_per_zone = pool;
      cfg.hpmmap = mod;
      break;
    }
  }
  return cfg;
}

os::MmPolicy policy_for(harness::Manager manager) {
  switch (manager) {
    case harness::Manager::kThp:       return os::MmPolicy::kLinuxThp;
    case harness::Manager::kHugetlbfs: return os::MmPolicy::kHugetlbfs;
    case harness::Manager::kHpmmap:    return os::MmPolicy::kHpmmap;
  }
  return os::MmPolicy::kLinuxThp;
}

DemoResult run_backend(harness::Manager manager, double mean_rps) {
  sim::Engine engine;
  const hw::MachineSpec machine = hw::dell_r415();
  os::Node node(engine, node_for(manager, machine));
  Rng rng(2014);

  // One diurnal period across the window: the service sees roughly
  // half load at the edges and the configured peak in the middle —
  // which is exactly when the build arrives.
  serving::ArrivalConfig arrival;
  arrival.shape = serving::ArrivalShape::kDiurnal;
  arrival.mean_rps = mean_rps;
  arrival.duration_seconds = 1.0;
  arrival.diurnal_peak_factor = 2.0;
  arrival.diurnal_periods = 1;
  std::vector<serving::ScheduledRequest> schedule =
      serving::generate_schedule(arrival, machine.clock_hz, rng.fork("arrival"));

  workloads::ServerConfig service;
  service.policy = policy_for(manager);
  service.workers = 4;
  service.budgets = {
      {"lat<0.5ms", machine.cycles(0.0005)},
      {"lat<2ms", machine.cycles(0.002)},
  };
  workloads::ServerApp server(engine, node, std::move(service), std::move(schedule),
                              rng.fork("server"));

  // The mid-run ambush: a `make -j8` kernel build starts half a second
  // into the serving window, on the same node, unpinned.
  workloads::KernelBuildConfig bc;
  bc.jobs = 8;
  auto build = std::make_unique<workloads::KernelBuild>(node, bc, rng.fork("build"));
  DemoResult out;
  const Cycles build_at = engine.now() + machine.cycles(0.5);
  const Cycles t0 = engine.now();
  engine.schedule_at(build_at, [&] {
    out.build_start_seconds = machine.seconds(engine.now() - t0);
    build->start();
  });

  server.start([&engine] { engine.stop(); });
  engine.run();
  build->stop();

  out.server = server.stats();
  const serving::SloAccountant& slo = server.slo();
  for (std::size_t i = 0; i < slo.budget_count(); ++i) {
    harness::SloOutcome o;
    o.label = slo.budget(i).label;
    o.budget_us = machine.seconds(slo.budget(i).budget) * 1e6;
    o.violations = slo.violations(i);
    out.slo.push_back(std::move(o));
  }
  out.p50_us = server.latency().tails().p50();
  out.p99_us = server.latency().reservoir().quantile(0.99);
  out.p999_us = server.latency().reservoir().quantile(0.999);
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const double mean_rps = argc > 1 ? std::atof(argv[1]) : 60'000.0;

  std::printf("Serving demo: diurnal wave @ %.0f rps mean (2x peak), 4 workers,\n"
              "kernel build (-j8) ambushes the node at t=0.5s of a 1s window\n\n",
              mean_rps);

  harness::Table table({"Manager", "Completed", "Shed", "p50 (us)", "p99 (us)",
                        "p99.9 (us)", "<0.5ms miss", "<2ms miss"});
  std::uint64_t best = ~0ull;
  std::string best_name;
  for (const harness::Manager manager :
       {harness::Manager::kThp, harness::Manager::kHugetlbfs, harness::Manager::kHpmmap}) {
    const DemoResult r = run_backend(manager, mean_rps);
    std::uint64_t total = 0;
    for (const auto& o : r.slo) {
      total += o.violations;
    }
    if (total < best) {
      best = total;
      best_name = std::string(name(manager));
    }
    table.add_row({std::string(name(manager)), harness::with_commas(r.server.completed),
                   harness::with_commas(r.server.shed_queue + r.server.shed_timeout),
                   harness::fixed(r.p50_us, 1), harness::fixed(r.p99_us, 1),
                   harness::fixed(r.p999_us, 1), harness::with_commas(r.slo[0].violations),
                   harness::with_commas(r.slo[1].violations)});
  }
  table.print();
  std::printf("\nFewest SLO misses: %s. The build floods the buddy allocator and the\n"
              "page cache mid-window; managers that fault (or zero) on the request\n"
              "path eat that pressure inside the latency budget, HPMMAP pre-backs\n"
              "its arenas and rides through (paper, Sec. III-IV).\n",
              best_name.c_str());
  return 0;
}
