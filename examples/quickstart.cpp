// Quickstart: load the HPMMAP module on a simulated node, run the same
// HPC benchmark under Linux THP and under HPMMAP, and compare what the
// application experienced.
//
//   $ ./build/examples/quickstart [app] [cores]
//
// This is the 60-second version of the paper's Figure 7 story: HPMMAP
// registers the app's PID, interposes its address-space syscalls, backs
// every region with large pages at allocation time, and the app stops
// taking page faults.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hpmmap;

  const std::string app = argc > 1 ? argv[1] : "HPCCG";
  const std::uint32_t cores = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

  std::printf("HPMMAP quickstart: %s on %u cores, one competing kernel build\n\n", app.c_str(),
              cores);

  harness::Table table({"Manager", "Runtime (s)", "Small faults", "Large faults",
                        "Merge-blocked", "Avg small (cyc)", "Avg large (cyc)"});

  for (const harness::Manager manager :
       {harness::Manager::kThp, harness::Manager::kHugetlbfs, harness::Manager::kHpmmap}) {
    harness::SingleNodeRunConfig cfg;
    cfg.app = app;
    cfg.manager = manager;
    cfg.commodity = workloads::profile_a(cores);
    cfg.app_cores = cores;
    cfg.seed = 2014;
    cfg.trace.categories = static_cast<std::uint32_t>(trace::Category::kFault);
    // Quick mode: quarter footprint, fifth duration — shapes survive.
    cfg.footprint_scale = 0.25;
    cfg.duration_scale = 0.2;

    const harness::RunResult r = harness::run_single_node(cfg);
    const auto k = [&](mm::FaultKind kind) { return r.by_kind(kind); };
    table.add_row({std::string(name(manager)), harness::fixed(r.runtime_seconds, 2),
                   harness::with_commas(k(mm::FaultKind::kSmall).total_faults),
                   harness::with_commas(k(mm::FaultKind::kLarge).total_faults),
                   harness::with_commas(k(mm::FaultKind::kMergeFollower).total_faults),
                   harness::with_commas(
                       static_cast<std::uint64_t>(k(mm::FaultKind::kSmall).avg_cycles)),
                   harness::with_commas(
                       static_cast<std::uint64_t>(k(mm::FaultKind::kLarge).avg_cycles))});
  }
  table.print();
  std::printf("\nHPMMAP's rows should show (near-)zero faults: memory is backed on request,\n"
              "so the fault handler never runs for the registered process (paper, Sec. III).\n");
  return 0;
}
